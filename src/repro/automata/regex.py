"""Path regular expressions over edge labels.

Section 3: *"one wants to specify paths of arbitrary length ... These
problems indicate that one would like to have something like regular
expressions to constrain paths."*  This module defines the abstract syntax
of such path regexes together with a concrete textual grammar shared by the
Lorel-style language (general path expressions) and the standalone RPQ API.

Grammar::

    regex   := seq ('|' seq)*
    seq     := rep ('.' rep)*
    rep     := atom ('*' | '+' | '?')?
    atom    := '(' regex ')'
             | '_'                   -- any single label
             | '#'                   -- any path, i.e. _*
             | '!' atom              -- any single label NOT matched by atom
             | name                  -- symbol, '%' is a multi-char wildcard
             | "text"                -- string data label, '%' wildcard
             | <int> | <real> | <string> | <bool> | <symbol>  -- type tests

Examples from the paper's running movie database::

    Entry.Movie.Title                 -- a fixed path
    Entry._.Title                     -- one unknown step
    #."Casablanca"                    -- the string anywhere in the database
    Entry.Movie.(!Movie)*."Allen"     -- Allen below a Movie without passing
                                         another Movie edge on the way
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Iterator

from ..core.labels import Label, LabelKind, label_of, sym

__all__ = [
    "LabelPredicate",
    "exact",
    "glob_symbol",
    "glob_string",
    "any_label",
    "type_test",
    "negated",
    "PathRegex",
    "AtomRE",
    "ConcatRE",
    "AltRE",
    "StarRE",
    "PlusRE",
    "OptRE",
    "EpsilonRE",
    "parse_path_regex",
    "RegexSyntaxError",
]


# ---------------------------------------------------------------------------
# Label predicates: the alphabet "letters" of a path regex.


@dataclass(frozen=True, slots=True)
class LabelPredicate:
    """A decidable predicate on labels, with a stable key for memoization.

    ``kind`` discriminates the match rule; ``payload`` parameterizes it.
    Predicates compare and hash by value, so automata states built from
    them dedupe correctly.
    """

    kind: str
    payload: tuple = ()

    def matches(self, label: Label) -> bool:
        k = self.kind
        if k == "exact":
            return label == self.payload[0]
        if k == "glob-symbol":
            return label.is_symbol and fnmatch.fnmatchcase(
                str(label.value), self.payload[0]
            )
        if k == "glob-string":
            return label.is_string and fnmatch.fnmatchcase(
                str(label.value), self.payload[0]
            )
        if k == "any":
            return True
        if k == "type":
            return label.kind is self.payload[0]
        if k == "not":
            return not self.payload[0].matches(label)
        raise AssertionError(f"unknown predicate kind {k!r}")

    @property
    def is_exact(self) -> bool:
        return self.kind == "exact"

    @property
    def exact_label(self) -> Label:
        if not self.is_exact:
            raise ValueError("not an exact predicate")
        return self.payload[0]

    def __str__(self) -> str:
        k = self.kind
        if k == "exact":
            return repr(self.payload[0])
        if k == "glob-symbol":
            return self.payload[0].replace("*", "%")
        if k == "glob-string":
            return '"' + self.payload[0].replace("*", "%") + '"'
        if k == "any":
            return "_"
        if k == "type":
            return f"<{self.payload[0].value}>"
        if k == "not":
            return f"!{self.payload[0]}"
        raise AssertionError


def exact(label: Label | str | int | float | bool) -> LabelPredicate:
    """Match exactly one label (a ``str`` means a symbol, as in Graph.add_edge)."""
    lab = sym(label) if isinstance(label, str) else label_of(label)
    return LabelPredicate("exact", (lab,))


def glob_symbol(pattern: str) -> LabelPredicate:
    """Match symbols against a ``%``-wildcard pattern (e.g. ``act%``)."""
    return LabelPredicate("glob-symbol", (pattern.replace("%", "*"),))


def glob_string(pattern: str) -> LabelPredicate:
    """Match string data labels against a ``%``-wildcard pattern."""
    return LabelPredicate("glob-string", (pattern.replace("%", "*"),))


def any_label() -> LabelPredicate:
    """Match any label at all (the ``_`` wildcard)."""
    return LabelPredicate("any")


def type_test(kind: LabelKind) -> LabelPredicate:
    """Match labels of one kind: the dynamic type predicates of section 2."""
    return LabelPredicate("type", (kind,))


def negated(inner: LabelPredicate) -> LabelPredicate:
    """Match any single label the inner predicate rejects."""
    return LabelPredicate("not", (inner,))


# ---------------------------------------------------------------------------
# Regex AST.


class PathRegex:
    """Base class of path-regex AST nodes."""

    def atoms(self) -> Iterator[LabelPredicate]:
        """All label predicates appearing in the regex."""
        raise NotImplementedError

    def __or__(self, other: "PathRegex") -> "PathRegex":
        return AltRE(self, other)

    def then(self, other: "PathRegex") -> "PathRegex":
        return ConcatRE(self, other)

    def star(self) -> "PathRegex":
        return StarRE(self)


@dataclass(frozen=True)
class AtomRE(PathRegex):
    predicate: LabelPredicate

    def atoms(self):
        yield self.predicate

    def __str__(self):
        return str(self.predicate)


@dataclass(frozen=True)
class EpsilonRE(PathRegex):
    def atoms(self):
        return iter(())

    def __str__(self):
        return "()"


@dataclass(frozen=True)
class ConcatRE(PathRegex):
    left: PathRegex
    right: PathRegex

    def atoms(self):
        yield from self.left.atoms()
        yield from self.right.atoms()

    def __str__(self):
        return f"{self.left}.{self.right}"


@dataclass(frozen=True)
class AltRE(PathRegex):
    left: PathRegex
    right: PathRegex

    def atoms(self):
        yield from self.left.atoms()
        yield from self.right.atoms()

    def __str__(self):
        return f"({self.left}|{self.right})"


@dataclass(frozen=True)
class StarRE(PathRegex):
    inner: PathRegex

    def atoms(self):
        yield from self.inner.atoms()

    def __str__(self):
        return f"({self.inner})*"


@dataclass(frozen=True)
class PlusRE(PathRegex):
    inner: PathRegex

    def atoms(self):
        yield from self.inner.atoms()

    def __str__(self):
        return f"({self.inner})+"


@dataclass(frozen=True)
class OptRE(PathRegex):
    inner: PathRegex

    def atoms(self):
        yield from self.inner.atoms()

    def __str__(self):
        return f"({self.inner})?"


# ---------------------------------------------------------------------------
# Parser.


class RegexSyntaxError(ValueError):
    """Raised on malformed path-regex text."""


_TYPE_TESTS = {
    "int": LabelKind.INT,
    "real": LabelKind.REAL,
    "string": LabelKind.STRING,
    "bool": LabelKind.BOOL,
    "symbol": LabelKind.SYMBOL,
}


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    # -- lexing helpers -------------------------------------------------------

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self._skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def take(self, expected: str | None = None) -> str:
        self._skip_ws()
        if self.pos >= len(self.text):
            raise RegexSyntaxError(f"unexpected end of pattern in {self.text!r}")
        ch = self.text[self.pos]
        if expected is not None and ch != expected:
            raise RegexSyntaxError(
                f"expected {expected!r} at position {self.pos} in {self.text!r}, got {ch!r}"
            )
        self.pos += 1
        return ch

    # -- grammar --------------------------------------------------------------

    def parse(self) -> PathRegex:
        node = self.alt()
        self._skip_ws()
        if self.pos != len(self.text):
            raise RegexSyntaxError(
                f"trailing input at position {self.pos} in {self.text!r}"
            )
        return node

    def alt(self) -> PathRegex:
        node = self.seq()
        while self.peek() == "|":
            self.take("|")
            node = AltRE(node, self.seq())
        return node

    def seq(self) -> PathRegex:
        node = self.rep()
        while self.peek() == ".":
            self.take(".")
            node = ConcatRE(node, self.rep())
        return node

    def rep(self) -> PathRegex:
        node = self.atom()
        ch = self.peek()
        if ch == "*":
            self.take()
            return StarRE(node)
        if ch == "+":
            self.take()
            return PlusRE(node)
        if ch == "?":
            self.take()
            return OptRE(node)
        return node

    def atom(self) -> PathRegex:
        ch = self.peek()
        if not ch:
            raise RegexSyntaxError(f"unexpected end of pattern in {self.text!r}")
        if ch == "(":
            self.take("(")
            if self.peek() == ")":
                self.take(")")
                return EpsilonRE()
            node = self.alt()
            self.take(")")
            return node
        if ch == "_":
            self.take()
            return AtomRE(any_label())
        if ch == "#":
            self.take()
            return StarRE(AtomRE(any_label()))
        if ch == "!":
            self.take()
            inner = self.atom()
            if not isinstance(inner, AtomRE):
                raise RegexSyntaxError("'!' applies to a single label atom")
            return AtomRE(negated(inner.predicate))
        if ch == '"' or ch == "'":
            return AtomRE(self._string_atom())
        if ch == "`":
            return AtomRE(self._backquoted_symbol())
        if ch == "<":
            return AtomRE(self._type_atom())
        if ch.isdigit() or ch == "-":
            return AtomRE(self._number_atom())
        if ch.isalpha() or ch in "%@":
            return AtomRE(self._name_atom())
        raise RegexSyntaxError(
            f"unexpected character {ch!r} at position {self.pos} in {self.text!r}"
        )

    def _string_atom(self) -> LabelPredicate:
        quote = self.take()
        out = []
        while True:
            if self.pos >= len(self.text):
                raise RegexSyntaxError(f"unterminated string in {self.text!r}")
            ch = self.text[self.pos]
            self.pos += 1
            if ch == quote:
                break
            if ch == "\\" and self.pos < len(self.text):
                ch = self.text[self.pos]
                self.pos += 1
            out.append(ch)
        text = "".join(out)
        if "%" in text:
            return glob_string(text)
        from ..core.labels import string as string_label

        return exact(string_label(text))

    def _backquoted_symbol(self) -> LabelPredicate:
        """A symbol in backquotes: allows spaces etc. (e.g. ```TV Show```)."""
        self.take("`")
        out = []
        while True:
            if self.pos >= len(self.text):
                raise RegexSyntaxError(f"unterminated `symbol` in {self.text!r}")
            ch = self.text[self.pos]
            self.pos += 1
            if ch == "`":
                break
            out.append(ch)
        name = "".join(out)
        if "%" in name:
            return glob_symbol(name)
        return exact(sym(name))

    def _type_atom(self) -> LabelPredicate:
        self.take("<")
        name = []
        while self.peek() != ">":
            name.append(self.take())
        self.take(">")
        key = "".join(name).strip().lower()
        if key not in _TYPE_TESTS:
            raise RegexSyntaxError(f"unknown type test <{key}>")
        return type_test(_TYPE_TESTS[key])

    def _number_atom(self) -> LabelPredicate:
        start = self.pos
        if self.peek() == "-":
            self.take()
        seen_dot = False
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch.isdigit():
                self.pos += 1
            elif (
                ch == "."
                and not seen_dot
                and self.pos + 1 < len(self.text)
                and self.text[self.pos + 1].isdigit()
            ):
                # A dot is consumed into the number only when digits
                # follow (at most once): `2.5` is the real 2.5, while in
                # `ByYear.1942.Title` the second dot separates steps.
                # `Episode.1.2` therefore reads as the real 1.2 -- write
                # `Episode.(1).(2)` to force two integer steps.
                seen_dot = True
                self.pos += 1
            else:
                break
        text = self.text[start : self.pos]
        if not text or text == "-":
            raise RegexSyntaxError(f"bad number at position {start} in {self.text!r}")
        if "." in text:
            return exact(float(text))
        return exact(int(text))

    def _name_atom(self) -> LabelPredicate:
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_%@-"
        ):
            self.pos += 1
        name = self.text[start : self.pos]
        if "%" in name:
            return glob_symbol(name)
        return exact(sym(name))


def parse_path_regex(text: str) -> PathRegex:
    """Parse the textual grammar into a :class:`PathRegex` AST."""
    return _Parser(text).parse()
