"""Bounded LRU cache of compiled RPQ plans (pattern text -> LazyDfa).

Molyneux's Delta implementation (PAPERS.md) found query/plan caching to
be the decisive optimization for a semistructured engine, and the seed
code paid the opposite tax: every ``rpq_nodes(graph, "Entry.Movie.Title")``
call re-parsed the pattern, rebuilt the Thompson NFA, and re-determinized
from scratch.  A :class:`PlanCache` interns compiled
:class:`~repro.automata.dfa.LazyDfa` plans by their pattern text so the
parse/build/determinize work -- and the lazily materialized DFA states
and label truth vectors accumulated by earlier runs -- are reused across
calls.

Plans are immutable-by-convention (a ``LazyDfa`` only ever *grows* its
memo tables, never changes an answer), so sharing one plan between
callers is safe.  The cache is a plain bounded LRU: no clocks, no
clocks; eviction on insert past capacity.  Every cache operation --
lookup, pruning store, clear, stats -- holds one re-entrant lock, so the
asyncio server's worker tasks (and any caller's threads) can share a
cache without corrupting the LRU order or the hit/miss/size accounting;
the lock also covers the counter increments themselves, which are plain
read-modify-write and not atomic on their own.  A miss compiles
``build()`` under the lock: plans are cheap to build relative to a
duplicated-compile race, and the lock being re-entrant means a
``build`` that consults the same cache cannot deadlock.

Accounting lives in the module-level :data:`PLAN_METRICS`
:class:`~repro.obs.MetricsRegistry` (the same always-on pattern as
``STORAGE_METRICS``): each cache registers ``<name>_hits`` /
``<name>_misses`` / ``<name>_evictions`` counters and a ``<name>_size``
gauge, surfaced by the ``profile`` and ``stats --json`` CLI subcommands.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable

from ..obs.metrics import MetricsRegistry
from .dfa import LazyDfa
from .nfa import build_nfa
from .regex import parse_path_regex

__all__ = ["PlanCache", "PLAN_METRICS", "DEFAULT_PLAN_CACHE", "cached_compile"]

#: Always-on accounting for every plan cache in the process.
PLAN_METRICS = MetricsRegistry()


class PlanCache:
    """A bounded LRU of compiled plans, keyed by pattern text.

    ``lookup`` returns ``(plan, was_hit)`` -- the flag is what the
    profiled RPQ entry points use for correct ``dfa_states``
    accounting: a cache hit hands back a plan whose states were
    materialized by *earlier* queries, so only states the current query
    adds are its own work; a miss compiles fresh and every state the
    run materializes (including the start state) is charged to it.
    """

    def __init__(
        self,
        capacity: int = 256,
        *,
        name: str = "plan_cache",
        registry: MetricsRegistry = PLAN_METRICS,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._lock = threading.RLock()
        self._plans: "OrderedDict[str, LazyDfa]" = OrderedDict()
        # (pattern text, graph snapshot id) -> guide-pruning component
        # (the planner's per-DFA-state label mask); lives and dies with
        # the pattern's plan entry.
        self._prunings: dict[tuple[str, int], object] = {}
        self._hits = registry.counter(f"{name}_hits")
        self._misses = registry.counter(f"{name}_misses")
        self._evictions = registry.counter(f"{name}_evictions")
        self._size = registry.gauge(f"{name}_size")

    def lookup(
        self, pattern: str, build: "Callable[[], LazyDfa] | None" = None
    ) -> tuple[LazyDfa, bool]:
        """The plan for ``pattern`` plus whether it was already cached.

        On a miss the plan comes from ``build()`` when given (callers
        that already hold a parsed AST avoid re-parsing), else from
        compiling ``pattern`` through the standard path-regex grammar.
        """
        with self._lock:
            plan = self._plans.get(pattern)
            if plan is not None:
                self._plans.move_to_end(pattern)
                self._hits.inc()
                return plan, True
            self._misses.inc()
            if build is not None:
                plan = build()
            else:
                plan = LazyDfa(build_nfa(parse_path_regex(pattern)))
            self._plans[pattern] = plan
            if len(self._plans) > self.capacity:
                evicted, _ = self._plans.popitem(last=False)
                self._drop_prunings(evicted)
                self._evictions.inc()
            self._size.set(len(self._plans))
            return plan, False

    def get(self, pattern: str, build: "Callable[[], LazyDfa] | None" = None) -> LazyDfa:
        """The plan for ``pattern`` (compiled on first use, then reused)."""
        return self.lookup(pattern, build)[0]

    # -- the guide-pruning component (keyed by graph snapshot) ------------------

    def pruning_for(self, pattern: str, snapshot_id: int):
        """The cached guide-pruning mask for ``pattern`` over one snapshot.

        Returns ``None`` when no mask has been stored; masks are only
        valid for the exact :class:`~repro.core.frozen.FrozenGraph`
        snapshot they were computed against, hence the id in the key.
        """
        with self._lock:
            return self._prunings.get((pattern, snapshot_id))

    def store_pruning(self, pattern: str, snapshot_id: int, mask: object) -> None:
        """Attach a guide-pruning mask to ``pattern``'s plan entry.

        Only patterns currently in the cache accept a mask (an evicted
        plan's pruning would be unreachable garbage); storing for an
        unknown pattern is a silent no-op.
        """
        with self._lock:
            if pattern in self._plans:
                self._prunings[(pattern, snapshot_id)] = mask

    def _drop_prunings(self, pattern: str) -> None:
        for key in [k for k in self._prunings if k[0] == pattern]:
            del self._prunings[key]

    def clear(self) -> None:
        """Drop every cached plan (counters keep their history)."""
        with self._lock:
            self._plans.clear()
            self._prunings.clear()
            self._size.set(0)

    def stats(self) -> dict[str, int]:
        """A snapshot of the cache's accounting (JSON-ready)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._plans),
                "hits": self._hits.value,
                "misses": self._misses.value,
                "evictions": self._evictions.value,
                "prunings": len(self._prunings),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, pattern: str) -> bool:
        with self._lock:
            return pattern in self._plans

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PlanCache {self.name} size={len(self._plans)}/{self.capacity} "
            f"hits={self._hits.value} misses={self._misses.value}>"
        )


#: The process-wide default cache the evaluators share.
DEFAULT_PLAN_CACHE = PlanCache()


def cached_compile(pattern: str, cache: "PlanCache | None" = None) -> LazyDfa:
    """Compile ``pattern`` through a plan cache (default: the shared one)."""
    return (cache if cache is not None else DEFAULT_PLAN_CACHE).get(pattern)
