"""Regular path query (RPQ) evaluation: graph x automaton product.

This is the "principled strategy" behind general path expressions: run the
path regex's automaton in lockstep with a forward traversal of the graph.
The product has at most ``|nodes| x |dfa states|`` configurations, so
evaluation is polynomial even on cyclic data where naive path enumeration
diverges -- exactly why the paper wants regular expressions rather than
explicit path search.  :func:`naive_rpq` implements that naive enumeration
as the baseline for experiment E2.
"""

from __future__ import annotations

from collections import deque
from operator import itemgetter

from ..core.graph import Edge, Graph
from ..core.labels import Label
from ..obs import QueryProfile
from ..resilience import PartialResult, completeness_of
from .dfa import LazyDfa
from .nfa import Nfa, build_nfa
from .regex import PathRegex, parse_path_regex

__all__ = [
    "compile_rpq",
    "rpq_nodes",
    "rpq_nodes_partial",
    "rpq_nodes_profiled",
    "rpq_witnesses",
    "rpq_witnesses_profiled",
    "naive_rpq",
]


def compile_rpq(pattern: "str | PathRegex | Nfa | LazyDfa") -> LazyDfa:
    """Compile any pattern form down to a runnable lazy DFA."""
    if isinstance(pattern, LazyDfa):
        return pattern
    if isinstance(pattern, Nfa):
        return LazyDfa(pattern)
    if isinstance(pattern, str):
        pattern = parse_path_regex(pattern)
    return LazyDfa(build_nfa(pattern))


def rpq_nodes(
    graph: Graph, pattern: "str | PathRegex | Nfa | LazyDfa", start: int | None = None
) -> set[int]:
    """All nodes reachable from ``start`` (default: root) by a matching path.

    BFS over the product space ``(graph node, dfa state)``; each
    configuration is visited at most once, so the query terminates on
    cyclic graphs and runs in ``O(edges x dfa states)``.
    """
    dfa = compile_rpq(pattern)
    origin = graph.root if start is None else start
    return _product_bfs(graph, dfa, origin)[0]


def _product_bfs(graph: Graph, dfa: LazyDfa, origin: int) -> tuple[set[int], set[tuple[int, int]]]:
    """The shared BFS core: matched nodes plus every explored config.

    Returning ``seen`` lets the profiled entry points derive their counts
    *after* the traversal (every seen config is expanded exactly once),
    so the hot loop itself carries no instrumentation.
    """
    results: set[int] = set()
    initial = (origin, dfa.start)
    if dfa.is_accepting(dfa.start):
        results.add(origin)
    seen = {initial}
    queue = deque([initial])
    while queue:
        node, state = queue.popleft()
        for edge in graph.edges_from(node):
            nxt_state = dfa.step(state, edge.label)
            if dfa.is_dead(nxt_state):
                continue
            config = (edge.dst, nxt_state)
            if config in seen:
                continue
            seen.add(config)
            if dfa.is_accepting(nxt_state):
                results.add(edge.dst)
            queue.append(config)
    return results, seen


def _fill_product_counts(
    profile: QueryProfile,
    graph: Graph,
    seen: set[tuple[int, int]],
    states_before: int,
    dfa: LazyDfa,
) -> None:
    """Derive the product counts of one BFS from its ``seen`` set."""
    visited = set(map(itemgetter(0), seen))
    profile.product_pairs += len(seen)
    profile.nodes_visited += len(visited)
    profile.edges_expanded += graph.total_out_degree(visited)
    profile.dfa_states += dfa.num_materialized_states - states_before


def rpq_nodes_profiled(
    graph: Graph,
    pattern: "str | PathRegex | Nfa | LazyDfa",
    start: int | None = None,
    *,
    profile: "QueryProfile | None" = None,
    tracer=None,
) -> tuple[set[int], QueryProfile]:
    """:func:`rpq_nodes` plus a :class:`~repro.obs.QueryProfile`.

    Counts are exact and deterministic: distinct nodes entered by the
    product, out-edges scanned from them, configurations explored, and
    DFA states materialized by this evaluation (for a pre-compiled
    :class:`LazyDfa` only *newly* built states count; a fresh compile
    counts all of them, including the start state).  Pass ``profile`` to
    accumulate across calls (the UnQL/Lorel evaluators do); pass a
    ``tracer`` to record the evaluation as a span.
    """
    dfa = compile_rpq(pattern)
    states_before = dfa.num_materialized_states if isinstance(pattern, LazyDfa) else 0
    origin = graph.root if start is None else start
    owns_profile = profile is None
    if profile is None:
        profile = QueryProfile(
            engine="rpq", query=pattern if isinstance(pattern, str) else "<compiled>"
        )
    if tracer is not None:
        with tracer.span("rpq", query=profile.query) as span:
            results, seen = _product_bfs(graph, dfa, origin)
            _fill_product_counts(profile, graph, seen, states_before, dfa)
            span.annotate(results=len(results), product_pairs=len(seen))
    else:
        results, seen = _product_bfs(graph, dfa, origin)
        _fill_product_counts(profile, graph, seen, states_before, dfa)
    if owns_profile:
        # when accumulating into a caller's profile (UnQL/Lorel), the
        # caller owns the results count; a sub-query's matches are not
        # the query's answers
        profile.results = len(results)
    return results, profile


def rpq_nodes_partial(
    graph: Graph, pattern: "str | PathRegex | Nfa | LazyDfa", start: int | None = None
) -> "PartialResult[set[int]]":
    """:func:`rpq_nodes` with the partial-result contract made explicit.

    Over a plain graph this is :func:`rpq_nodes` plus an always-exact
    report.  Over a degradable graph (an :class:`~repro.storage.external.
    ExternalGraph` in partial mode), failed regions contribute no edges,
    the product simply never enters them, and the attached
    :class:`~repro.resilience.Completeness` report says whether the node
    set is exact or a lower bound.  RPQ answers are monotone in the
    visible graph, so a lost region can only hide matches, never forge
    them.
    """
    nodes = rpq_nodes(graph, pattern, start)
    return PartialResult(nodes, completeness_of(graph))


def rpq_witnesses(
    graph: Graph, pattern: "str | PathRegex | Nfa | LazyDfa", start: int | None = None
) -> dict[int, tuple[Edge, ...]]:
    """A shortest witness path for every node matched by the pattern.

    Returns ``{node: (edge, edge, ...)}`` where the edge sequence spells a
    shortest label path from the start node that the regex accepts.  Used
    by Lorel path variables and by the browsing API to *show* the user
    where in the database something was found.
    """
    dfa = compile_rpq(pattern)
    origin = graph.root if start is None else start
    parents: dict[tuple[int, int], tuple[tuple[int, int], Edge] | None] = {
        (origin, dfa.start): None
    }
    witnesses: dict[int, tuple[Edge, ...]] = {}

    def reconstruct(config: tuple[int, int]) -> tuple[Edge, ...]:
        path: list[Edge] = []
        cursor = config
        while parents[cursor] is not None:
            prev, edge = parents[cursor]  # type: ignore[misc]
            path.append(edge)
            cursor = prev
        return tuple(reversed(path))

    if dfa.is_accepting(dfa.start):
        witnesses[origin] = ()
    queue = deque([(origin, dfa.start)])
    while queue:
        config = queue.popleft()
        node, state = config
        for edge in graph.edges_from(node):
            nxt_state = dfa.step(state, edge.label)
            if dfa.is_dead(nxt_state):
                continue
            nxt = (edge.dst, nxt_state)
            if nxt in parents:
                continue
            parents[nxt] = (config, edge)
            if dfa.is_accepting(nxt_state) and edge.dst not in witnesses:
                witnesses[edge.dst] = reconstruct(nxt)
            queue.append(nxt)
    return witnesses


def rpq_witnesses_profiled(
    graph: Graph,
    pattern: "str | PathRegex | Nfa | LazyDfa",
    start: int | None = None,
    *,
    profile: "QueryProfile | None" = None,
) -> tuple[dict[int, tuple[Edge, ...]], QueryProfile]:
    """:func:`rpq_witnesses` plus its :class:`~repro.obs.QueryProfile`.

    The witness search explores the same product configurations as
    :func:`rpq_nodes` (its ``parents`` map plays the role of ``seen``),
    so the two profiled entry points report identical traversal counts
    for the same query -- a cross-check the tests rely on.
    """
    dfa = compile_rpq(pattern)
    states_before = dfa.num_materialized_states if isinstance(pattern, LazyDfa) else 0
    witnesses = rpq_witnesses(graph, dfa, start)
    # Re-derive the explored configs: rpq_witnesses visits exactly the
    # configurations rpq_nodes does (same BFS, same pruning).
    origin = graph.root if start is None else start
    _, seen = _product_bfs(graph, dfa, origin)
    owns_profile = profile is None
    if profile is None:
        profile = QueryProfile(
            engine="rpq-witnesses",
            query=pattern if isinstance(pattern, str) else "<compiled>",
        )
    _fill_product_counts(profile, graph, seen, states_before, dfa)
    if owns_profile:
        profile.results = len(witnesses)
    return witnesses, profile


def naive_rpq(
    graph: Graph,
    pattern: "str | PathRegex | Nfa",
    max_length: int,
    start: int | None = None,
) -> set[int]:
    """Baseline: enumerate label paths up to ``max_length`` and test each.

    This is what a query processor without the product construction must
    do; on branchy or cyclic data the path count explodes exponentially
    (experiment E2 measures the gap).  ``max_length`` bounds the search so
    the baseline terminates on cyclic input; results agree with
    :func:`rpq_nodes` whenever every witness fits in the bound.
    """
    if isinstance(pattern, Nfa):
        nfa = pattern
    else:
        if isinstance(pattern, str):
            pattern = parse_path_regex(pattern)
        nfa = build_nfa(pattern)
    origin = graph.root if start is None else start
    results: set[int] = set()
    labels: list[Label] = []

    def explore(node: int) -> None:
        if nfa.matches(labels):
            results.add(node)
        if len(labels) >= max_length:
            return
        for edge in graph.edges_from(node):
            labels.append(edge.label)
            explore(edge.dst)
            labels.pop()

    explore(origin)
    return results
