"""Regular path query (RPQ) evaluation: graph x automaton product.

This is the "principled strategy" behind general path expressions: run the
path regex's automaton in lockstep with a forward traversal of the graph.
The product has at most ``|nodes| x |dfa states|`` configurations, so
evaluation is polynomial even on cyclic data where naive path enumeration
diverges -- exactly why the paper wants regular expressions rather than
explicit path search.  :func:`naive_rpq` implements that naive enumeration
as the baseline for experiment E2.

Two graph layouts are supported transparently.  Over a plain
:class:`~repro.core.graph.Graph` the product scans every out-edge of each
configuration -- the reference traversal the golden profiles pin.  Over a
:class:`~repro.core.frozen.FrozenGraph` the kernel is *label-pruned*: at
each ``(node, dfa state)`` it asks the automaton which exact labels can
advance (:meth:`LazyDfa.live_exact_labels`) and scans only the node's
matching per-label partitions, falling back to a full scan whenever a
wildcard/glob/negation guard makes the live alphabet unbounded.  Skipped
edges are exactly those a full scan would step into the dead state, so
results -- and, via :meth:`LazyDfa.ensure_dead_state`, the profiled
``dfa_states`` counts -- are identical on both layouts.

:func:`rpq_nodes_many` batches many source nodes into one tagged product
BFS so the per-query setup (plan resolution, transition cache, live-label
cache) is paid once per pattern instead of once per source.

The module also exports the small *kernel API* other runtimes build on:
:func:`product_bfs` (the shared BFS core), :func:`ordered_edge_indices`
(label-pruned, insertion-ordered edge scans), and :func:`compile_dense` /
:class:`DensePlan` (a finite DFA materialized over a snapshot's interned
alphabet, picklable and deterministic, for worker processes that cannot
share a :class:`LazyDfa`'s visitation-order-dependent state numbering).
Both the simulated distributed runtime (:mod:`repro.distributed.decompose`)
and the parallel one (:mod:`repro.distributed.parallel`) consume it.
"""

from __future__ import annotations

from array import array
from collections import deque
from dataclasses import dataclass, field
from operator import itemgetter
from typing import TYPE_CHECKING, Iterable

from ..core.frozen import FrozenGraph
from ..core.graph import Edge, Graph
from ..obs import QueryProfile
from ..resilience import (
    BudgetExhausted,
    Completeness,
    DeadlineExceeded,
    FailureRecord,
    PartialResult,
    QueryCancelled,
    completeness_of,
)
from .dfa import LazyDfa
from .nfa import Nfa, build_nfa
from .regex import PathRegex, parse_path_regex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .plan_cache import PlanCache

__all__ = [
    "compile_rpq",
    "compile_dense",
    "DensePlan",
    "PlanTooLarge",
    "product_bfs",
    "ordered_edge_indices",
    "rpq_nodes",
    "rpq_nodes_many",
    "rpq_nodes_partial",
    "rpq_nodes_profiled",
    "rpq_nodes_checkpointed",
    "RpqStepper",
    "rpq_witnesses",
    "rpq_witnesses_profiled",
    "naive_rpq",
]

#: Sentinel distinguishing "not cached yet" from a cached ``None``.
_UNSET = object()


def compile_rpq(
    pattern: "str | PathRegex | Nfa | LazyDfa",
    *,
    plan_cache: "PlanCache | None" = None,
) -> LazyDfa:
    """Compile any pattern form down to a runnable lazy DFA.

    With a ``plan_cache``, string patterns are interned: repeated queries
    reuse one plan (and everything it has already materialized) instead
    of re-parsing and re-determinizing.  Non-string forms bypass the
    cache -- they carry no stable text to key on.
    """
    if isinstance(pattern, LazyDfa):
        return pattern
    if isinstance(pattern, Nfa):
        return LazyDfa(pattern)
    if isinstance(pattern, str):
        if plan_cache is not None:
            return plan_cache.get(pattern)
        pattern = parse_path_regex(pattern)
    return LazyDfa(build_nfa(pattern))


def _resolve_plan(
    pattern: "str | PathRegex | Nfa | LazyDfa",
    plan_cache: "PlanCache | None",
) -> tuple[LazyDfa, int]:
    """The plan plus the ``dfa_states`` accounting baseline.

    A pre-compiled plan (passed directly, or served from the cache) only
    charges the current query for states it *newly* materializes; a fresh
    compile charges all of them, including the start state.
    """
    if plan_cache is not None and isinstance(pattern, str):
        dfa, was_hit = plan_cache.lookup(pattern)
        return dfa, (dfa.num_materialized_states if was_hit else 0)
    dfa = compile_rpq(pattern)
    states_before = dfa.num_materialized_states if isinstance(pattern, LazyDfa) else 0
    return dfa, states_before


def rpq_nodes(
    graph: "Graph | FrozenGraph",
    pattern: "str | PathRegex | Nfa | LazyDfa",
    start: int | None = None,
    *,
    plan_cache: "PlanCache | None" = None,
    guide_mask: "dict[int, frozenset[int]] | None" = None,
) -> set[int]:
    """All nodes reachable from ``start`` (default: root) by a matching path.

    BFS over the product space ``(graph node, dfa state)``; each
    configuration is visited at most once, so the query terminates on
    cyclic graphs and runs in ``O(edges x dfa states)``.  Pass a frozen
    graph for the label-pruned kernel, and a plan cache to amortize
    compilation across repeated string patterns -- both return the same
    node set as the plain path.

    ``guide_mask`` is the planner's static pruning component (DFA state
    -> label ids provably able to advance it on root-origin paths of
    *this* snapshot).  It is only sound for traversals starting at the
    snapshot's root and only applies to the frozen kernel; the planner is
    the intended caller (:class:`repro.planner.QueryPlanner` checks both
    conditions), and a mask passed alongside a plain graph is ignored.
    """
    dfa = compile_rpq(pattern, plan_cache=plan_cache)
    origin = graph.root if start is None else start
    return product_bfs(graph, dfa, origin, guide_mask)[0]


def product_bfs(
    graph: "Graph | FrozenGraph",
    dfa: LazyDfa,
    origin: int,
    guide_mask: "dict[int, frozenset[int]] | None" = None,
) -> tuple[set[int], set[tuple[int, int]]]:
    """The shared BFS core: matched nodes plus every explored config.

    Returning ``seen`` lets the profiled entry points derive their counts
    *after* the traversal (every seen config is expanded exactly once),
    so the hot loop itself carries no instrumentation.
    """
    if isinstance(graph, FrozenGraph):
        return _product_bfs_frozen(graph, dfa, origin, guide_mask)
    results: set[int] = set()
    initial = (origin, dfa.start)
    if dfa.is_accepting(dfa.start):
        results.add(origin)
    seen = {initial}
    queue = deque([initial])
    while queue:
        node, state = queue.popleft()
        for edge in graph.edges_from(node):
            nxt_state = dfa.step(state, edge.label)
            if dfa.is_dead(nxt_state):
                continue
            config = (edge.dst, nxt_state)
            if config in seen:
                continue
            seen.add(config)
            if dfa.is_accepting(nxt_state):
                results.add(edge.dst)
            queue.append(config)
    return results, seen


# -- the frozen (label-pruned) kernel -------------------------------------------


def _live_label_ids(
    fg: FrozenGraph,
    dfa: LazyDfa,
    state: int,
    cache: dict,
    mask: "dict[int, frozenset[int]] | None" = None,
) -> "tuple[int, ...] | None":
    """``state``'s live alphabet as interned label ids, or ``None``.

    ``None`` means the live set is not exactly known (some guard is a
    wildcard/glob/type/negation) and the caller must scan every edge.
    Labels the automaton can advance on but the graph never uses are
    dropped -- they cannot label any edge.  Cached per state because the
    answer only depends on the (immutable) NFA subset.

    ``mask`` is the planner's guide-derived pruning component: per DFA
    state, the label ids that can advance it *somewhere reachable from
    the snapshot's root* (:meth:`repro.planner.QueryPlanner`).  It may
    shrink an exact set further, and it turns an unbounded live set
    (wildcard/negation guards) into a finite one -- but bounding is only
    adopted when the mask rules out at least three quarters of the
    vocabulary: per-partition probing costs per *label*, a full scan per
    *edge*, so a barely-selective mask (``(!a)*`` allows almost every
    label) would trade one contiguous scan for hundreds of probes.
    Every label the mask excludes provably steps the automaton into the
    dead state on any root-origin traversal, so masked answers are
    identical to the unmasked scan -- the mask only skips the proving
    work.
    """
    ids = cache.get(state, _UNSET)
    if ids is not _UNSET:
        return ids
    live = dfa.live_exact_labels(state)
    if live is None:
        ids = None
    else:
        label_index = fg.label_index
        ids = tuple(sorted(label_index[lab] for lab in live if lab in label_index))
    if mask is not None:
        allowed = mask.get(state)
        if allowed is not None:
            if ids is None:
                if len(allowed) * 4 <= len(fg.labels_seq):
                    ids = tuple(sorted(allowed))
            else:
                ids = tuple(lid for lid in ids if lid in allowed)
    cache[state] = ids
    return ids


def ordered_edge_indices(
    fg: FrozenGraph,
    dfa: LazyDfa,
    state: int,
    pos: int,
    live_cache: dict,
    guide_mask: "dict[int, frozenset[int]] | None" = None,
):
    """The edge indices of the node at ``pos`` worth scanning from ``state``.

    Pruned to the state's live label partitions, but always yielded in
    *edge insertion order* -- the order a plain-graph scan uses -- so
    order-sensitive consumers (witness tie-breaking, the distributed BSP
    message schedule) behave identically on both layouts.  Skipping any
    edge interns the dead state, keeping profiled state counts aligned
    with the full scan that would have stepped into it.
    """
    offsets = fg.offsets
    begin, end = offsets[pos], offsets[pos + 1]
    if begin == end:
        return ()
    live = _live_label_ids(fg, dfa, state, live_cache, guide_mask)
    if live is None:
        return range(begin, end)
    part = fg.partitions[pos]
    buckets = [part[lid] for lid in live if lid in part]
    if sum(map(len, buckets)) == end - begin:
        return range(begin, end)
    dfa.ensure_dead_state()
    if not buckets:
        return ()
    if len(buckets) == 1:
        return buckets[0]
    merged: list[int] = []
    for bucket in buckets:
        merged.extend(bucket)
    merged.sort()
    return merged


# -- dense plans (the picklable worker kernel) ----------------------------------


class PlanTooLarge(ValueError):
    """The pattern's DFA exceeds the dense-materialization bound.

    Raised by :func:`compile_dense` when determinization over the
    snapshot's alphabet discovers more states than ``max_states``.
    Callers fall back to the lazy kernel; the bound exists because the
    dense table is ``num_states x num_labels`` ints.
    """


@dataclass(frozen=True)
class DensePlan:
    """A DFA fully materialized over one snapshot's interned alphabet.

    The lazy DFA numbers states in visitation order, so two processes
    running the same pattern materialize *different* numberings -- fine
    within one process, useless as a wire format.  A dense plan is the
    canonical alternative: states are numbered by a deterministic BFS
    from the start state expanding label ids in ascending order, the
    transition function is one flat ``array('q')`` (``state * num_labels
    + lid -> next state``, ``-1`` dead), and acceptance is one byte per
    state.  The whole plan pickles in a few hundred bytes and every
    attacher agrees on what state ``3`` means -- which is what lets
    parallel workers exchange ``(node, state)`` configurations as plain
    ints.

    The flat table is also the fast path: a worker advancing a config
    does ``trans[state * L + lid]`` -- one multiply-add and an array
    index -- instead of a dict probe on a ``(state, label)`` tuple key.

    Only labels the snapshot interns exist in the plan; an edge label
    outside the alphabet cannot label any edge, so dropping it changes
    no traversal.
    """

    num_states: int
    num_labels: int
    trans: array = field(repr=False)
    accepting: bytes = field(repr=False)
    start: int = 0

    def step(self, state: int, lid: int) -> int:
        """Next dense state on label id ``lid``, or ``-1`` (dead)."""
        return self.trans[state * self.num_labels + lid]

    def is_accepting(self, state: int) -> bool:
        return self.accepting[state] == 1


def compile_dense(
    pattern: "str | PathRegex | Nfa | LazyDfa",
    labels_seq,
    *,
    plan_cache: "PlanCache | None" = None,
    max_states: int = 4096,
) -> DensePlan:
    """Materialize ``pattern`` as a :class:`DensePlan` over ``labels_seq``.

    ``labels_seq`` is the snapshot's interned label sequence
    (:attr:`~repro.core.frozen.FrozenGraph.labels_seq`); position *is*
    the label id, exactly as in the CSR ``label_ids`` vector.  The
    construction is a BFS over DFA states restricted to that alphabet --
    deterministic regardless of how much of the lazy DFA was already
    materialized -- and raises :class:`PlanTooLarge` past ``max_states``.
    """
    dfa = compile_rpq(pattern, plan_cache=plan_cache)
    num_labels = len(labels_seq)
    dense_of = {dfa.start: 0}
    order = [dfa.start]
    rows: list[list[int]] = []
    cursor = 0
    while cursor < len(order):
        state = order[cursor]
        cursor += 1
        row = []
        for lid in range(num_labels):
            nxt = dfa.step(state, labels_seq[lid])
            if dfa.is_dead(nxt):
                row.append(-1)
                continue
            dense = dense_of.get(nxt)
            if dense is None:
                if len(order) >= max_states:
                    raise PlanTooLarge(
                        f"dense plan exceeds {max_states} states "
                        f"over a {num_labels}-label alphabet"
                    )
                dense = len(order)
                dense_of[nxt] = dense
                order.append(nxt)
            row.append(dense)
        rows.append(row)
    trans = array("q", [cell for row in rows for cell in row])
    accepting = bytes(1 if dfa.is_accepting(s) else 0 for s in order)
    return DensePlan(
        num_states=len(order),
        num_labels=num_labels,
        trans=trans,
        accepting=accepting,
    )


def _product_bfs_frozen(
    fg: FrozenGraph,
    dfa: LazyDfa,
    origin: int,
    guide_mask: "dict[int, frozenset[int]] | None" = None,
) -> tuple[set[int], set[tuple[int, int]]]:
    """Label-pruned product BFS over the CSR layout.

    Transitions are cached per ``(state, label id)`` with ``-1`` as the
    dead sentinel, so the steady state of the loop is pure int/array
    work: no Label hashing, no Edge allocation, and -- when the live
    alphabet is exact -- no touching of edges that cannot advance the
    automaton.
    """
    offsets, targets, label_ids = fg.offsets, fg.targets, fg.label_ids
    partitions, labels_seq, index = fg.partitions, fg.labels_seq, fg.index
    step, is_dead, is_accepting = dfa.step, dfa.is_dead, dfa.is_accepting
    results: set[int] = set()
    if is_accepting(dfa.start):
        results.add(origin)
    initial = (origin, dfa.start)
    seen = {initial}
    queue = deque([initial])
    trans: dict[tuple[int, int], int] = {}
    live_cache: dict = {}
    dead_interned = False
    while queue:
        node, state = queue.popleft()
        pos = node if index is None else index[node]
        begin, end = offsets[pos], offsets[pos + 1]
        if begin == end:
            continue
        live = _live_label_ids(fg, dfa, state, live_cache, guide_mask)
        if live is None:
            spans = (range(begin, end),)
        else:
            part = partitions[pos]
            spans = [part[lid] for lid in live if lid in part]
            if not dead_interned and sum(map(len, spans)) != end - begin:
                # a full scan would step every skipped edge into the dead
                # state; intern it so materialized-state counts agree
                dfa.ensure_dead_state()
                dead_interned = True
        for span in spans:
            for i in span:
                lid = label_ids[i]
                key = (state, lid)
                nxt = trans.get(key)
                if nxt is None:
                    stepped = step(state, labels_seq[lid])
                    nxt = -1 if is_dead(stepped) else stepped
                    trans[key] = nxt
                if nxt < 0:
                    continue
                dst = targets[i]
                config = (dst, nxt)
                if config not in seen:
                    seen.add(config)
                    if is_accepting(nxt):
                        results.add(dst)
                    queue.append(config)
    return results, seen


# -- profiled twins -------------------------------------------------------------


def _fill_product_counts(
    profile: QueryProfile,
    graph: "Graph | FrozenGraph",
    seen: "set[tuple[int, int]] | dict",
    states_before: int,
    dfa: LazyDfa,
) -> None:
    """Derive the product counts of one BFS from its explored configs.

    ``seen`` is any sized collection of ``(node, state)`` configs -- the
    BFS ``seen`` set or the witness search's ``parents`` map.
    """
    visited = set(map(itemgetter(0), seen))
    profile.product_pairs += len(seen)
    profile.nodes_visited += len(visited)
    profile.edges_expanded += graph.total_out_degree(visited)
    profile.dfa_states += dfa.num_materialized_states - states_before


def rpq_nodes_profiled(
    graph: "Graph | FrozenGraph",
    pattern: "str | PathRegex | Nfa | LazyDfa",
    start: int | None = None,
    *,
    profile: "QueryProfile | None" = None,
    tracer=None,
    plan_cache: "PlanCache | None" = None,
    guide_mask: "dict[int, frozenset[int]] | None" = None,
) -> tuple[set[int], QueryProfile]:
    """:func:`rpq_nodes` plus a :class:`~repro.obs.QueryProfile`.

    Counts are exact and deterministic: distinct nodes entered by the
    product, out-edges scanned from them, configurations explored, and
    DFA states materialized by this evaluation (for a pre-compiled
    :class:`LazyDfa` -- passed directly or served as a plan-cache hit --
    only *newly* built states count; a fresh compile counts all of them,
    including the start state).  Pass ``profile`` to accumulate across
    calls (the UnQL/Lorel evaluators do); pass a ``tracer`` to record the
    evaluation as a span.  The counts are identical whichever graph
    layout or cache configuration serves the query.
    """
    dfa, states_before = _resolve_plan(pattern, plan_cache)
    origin = graph.root if start is None else start
    owns_profile = profile is None
    if profile is None:
        profile = QueryProfile(
            engine="rpq", query=pattern if isinstance(pattern, str) else "<compiled>"
        )
    if tracer is not None:
        with tracer.span("rpq", query=profile.query) as span:
            results, seen = product_bfs(graph, dfa, origin, guide_mask)
            _fill_product_counts(profile, graph, seen, states_before, dfa)
            span.annotate(results=len(results), product_pairs=len(seen))
    else:
        results, seen = product_bfs(graph, dfa, origin, guide_mask)
        _fill_product_counts(profile, graph, seen, states_before, dfa)
    if owns_profile:
        # when accumulating into a caller's profile (UnQL/Lorel), the
        # caller owns the results count; a sub-query's matches are not
        # the query's answers
        profile.results = len(results)
    return results, profile


def rpq_nodes_partial(
    graph: "Graph | FrozenGraph",
    pattern: "str | PathRegex | Nfa | LazyDfa",
    start: int | None = None,
    *,
    plan_cache: "PlanCache | None" = None,
) -> "PartialResult[set[int]]":
    """:func:`rpq_nodes` with the partial-result contract made explicit.

    Over a plain graph this is :func:`rpq_nodes` plus an always-exact
    report.  Over a degradable graph (an :class:`~repro.storage.external.
    ExternalGraph` in partial mode), failed regions contribute no edges,
    the product simply never enters them, and the attached
    :class:`~repro.resilience.Completeness` report says whether the node
    set is exact or a lower bound.  RPQ answers are monotone in the
    visible graph, so a lost region can only hide matches, never forge
    them.
    """
    nodes = rpq_nodes(graph, pattern, start, plan_cache=plan_cache)
    return PartialResult(nodes, completeness_of(graph))


# -- batched multi-source evaluation --------------------------------------------


def rpq_nodes_many(
    graph: "Graph | FrozenGraph",
    pattern: "str | PathRegex | Nfa | LazyDfa",
    sources: Iterable[int],
    *,
    plan_cache: "PlanCache | None" = None,
) -> dict[int, set[int]]:
    """One tagged product BFS answering the pattern from many sources.

    Returns ``{source: matched nodes}``, equal to running
    :func:`rpq_nodes` once per source.  Configurations carry an origin
    tag, ``(source, node, state)``, so sources whose frontiers overlap
    still get separate answers while sharing a single plan, transition
    cache, and live-label cache -- the per-query setup cost is paid once
    per *pattern* instead of once per *source*, which is what makes
    Lorel's per-binding path conditions cheap.
    """
    dfa = compile_rpq(pattern, plan_cache=plan_cache)
    order = list(dict.fromkeys(sources))
    results: dict[int, set[int]] = {s: set() for s in order}
    if not order:
        return results
    if isinstance(graph, FrozenGraph):
        _rpq_many_frozen(graph, dfa, order, results)
        return results
    accept_start = dfa.is_accepting(dfa.start)
    seen: set[tuple[int, int, int]] = set()
    queue: deque[tuple[int, int, int]] = deque()
    for s in order:
        if accept_start:
            results[s].add(s)
        config = (s, s, dfa.start)
        seen.add(config)
        queue.append(config)
    while queue:
        tag, node, state = queue.popleft()
        for edge in graph.edges_from(node):
            nxt_state = dfa.step(state, edge.label)
            if dfa.is_dead(nxt_state):
                continue
            config = (tag, edge.dst, nxt_state)
            if config in seen:
                continue
            seen.add(config)
            if dfa.is_accepting(nxt_state):
                results[tag].add(edge.dst)
            queue.append(config)
    return results


def _rpq_many_frozen(
    fg: FrozenGraph, dfa: LazyDfa, order: list[int], results: dict[int, set[int]]
) -> None:
    """The frozen-kernel body of :func:`rpq_nodes_many` (fills ``results``)."""
    offsets, targets, label_ids = fg.offsets, fg.targets, fg.label_ids
    partitions, labels_seq, index = fg.partitions, fg.labels_seq, fg.index
    step, is_dead, is_accepting = dfa.step, dfa.is_dead, dfa.is_accepting
    accept_start = is_accepting(dfa.start)
    seen: set[tuple[int, int, int]] = set()
    queue: deque[tuple[int, int, int]] = deque()
    for s in order:
        if accept_start:
            results[s].add(s)
        config = (s, s, dfa.start)
        seen.add(config)
        queue.append(config)
    trans: dict[tuple[int, int], int] = {}
    live_cache: dict = {}
    dead_interned = False
    while queue:
        tag, node, state = queue.popleft()
        pos = node if index is None else index[node]
        begin, end = offsets[pos], offsets[pos + 1]
        if begin == end:
            continue
        live = _live_label_ids(fg, dfa, state, live_cache)
        if live is None:
            spans = (range(begin, end),)
        else:
            part = partitions[pos]
            spans = [part[lid] for lid in live if lid in part]
            if not dead_interned and sum(map(len, spans)) != end - begin:
                dfa.ensure_dead_state()
                dead_interned = True
        for span in spans:
            for i in span:
                lid = label_ids[i]
                key = (state, lid)
                nxt = trans.get(key)
                if nxt is None:
                    stepped = step(state, labels_seq[lid])
                    nxt = -1 if is_dead(stepped) else stepped
                    trans[key] = nxt
                if nxt < 0:
                    continue
                dst = targets[i]
                config = (tag, dst, nxt)
                if config not in seen:
                    seen.add(config)
                    if is_accepting(nxt):
                        results[tag].add(dst)
                    queue.append(config)


# -- checkpointed (superstep) evaluation ------------------------------------------


class RpqStepper:
    """A resumable, level-synchronous RPQ product traversal.

    The same product BFS as :func:`rpq_nodes`, cut into *supersteps*: one
    :meth:`step` call expands the whole current frontier (every config at
    the same BFS depth) and then returns control to the caller.  Between
    steps a server can checkpoint a deadline or operation budget, honor a
    cooperative cancellation, or interleave other queries -- without any
    instrumentation inside the edge loop itself.

    Driven to completion the stepper explores exactly the configurations
    of :func:`rpq_nodes` and :attr:`results` equals its answer (asserted
    by the kernel tests on both layouts).  Interrupted, :attr:`results`
    is a sound lower bound: RPQ answers are monotone in the explored
    region, so stopping early can only *hide* matches, never invent them
    -- which is what makes the :class:`~repro.resilience.Completeness`
    contract attachable to a half-run query.

    ``ops`` counts edges scanned *on the serving layout*: the frozen
    kernel's label pruning skips edges a plain scan would touch, so a
    budget is a bound on actual work done, not on the logical graph.
    """

    __slots__ = (
        "graph",
        "dfa",
        "origin",
        "results",
        "supersteps",
        "ops",
        "_seen",
        "_frontier",
        "_frozen",
        "_trans",
        "_live_cache",
        "_dead_interned",
    )

    def __init__(
        self,
        graph: "Graph | FrozenGraph",
        pattern: "str | PathRegex | Nfa | LazyDfa",
        start: int | None = None,
        *,
        plan_cache: "PlanCache | None" = None,
    ) -> None:
        self.graph = graph
        self.dfa = compile_rpq(pattern, plan_cache=plan_cache)
        self.origin = graph.root if start is None else start
        self.results: set[int] = set()
        if self.dfa.is_accepting(self.dfa.start):
            self.results.add(self.origin)
        initial = (self.origin, self.dfa.start)
        self._seen: set[tuple[int, int]] = {initial}
        self._frontier: list[tuple[int, int]] = [initial]
        self.supersteps = 0
        self.ops = 0
        self._frozen = isinstance(graph, FrozenGraph)
        self._trans: dict[tuple[int, int], int] = {}
        self._live_cache: dict = {}
        self._dead_interned = False

    @property
    def done(self) -> bool:
        return not self._frontier

    @property
    def frontier_size(self) -> int:
        """Configs awaiting expansion -- the work dropped if we stop now."""
        return len(self._frontier)

    @property
    def seen(self) -> set[tuple[int, int]]:
        """Every explored config (the profiled-twin accounting surface)."""
        return self._seen

    def step(self) -> bool:
        """Expand one superstep; ``True`` while work remains."""
        if not self._frontier:
            return False
        if self._frozen:
            self._step_frozen()
        else:
            self._step_plain()
        self.supersteps += 1
        return bool(self._frontier)

    def _step_plain(self) -> None:
        graph, dfa = self.graph, self.dfa
        seen, results = self._seen, self.results
        ops = 0
        nxt_frontier: list[tuple[int, int]] = []
        for node, state in self._frontier:
            for edge in graph.edges_from(node):
                ops += 1
                nxt_state = dfa.step(state, edge.label)
                if dfa.is_dead(nxt_state):
                    continue
                config = (edge.dst, nxt_state)
                if config in seen:
                    continue
                seen.add(config)
                if dfa.is_accepting(nxt_state):
                    results.add(edge.dst)
                nxt_frontier.append(config)
        self.ops += ops
        self._frontier = nxt_frontier

    def _step_frozen(self) -> None:
        fg: FrozenGraph = self.graph  # type: ignore[assignment]
        dfa = self.dfa
        offsets, targets, label_ids = fg.offsets, fg.targets, fg.label_ids
        partitions, labels_seq, index = fg.partitions, fg.labels_seq, fg.index
        step, is_dead, is_accepting = dfa.step, dfa.is_dead, dfa.is_accepting
        seen, results, trans = self._seen, self.results, self._trans
        ops = 0
        nxt_frontier: list[tuple[int, int]] = []
        for node, state in self._frontier:
            pos = node if index is None else index[node]
            begin, end = offsets[pos], offsets[pos + 1]
            if begin == end:
                continue
            live = _live_label_ids(fg, dfa, state, self._live_cache)
            if live is None:
                spans = (range(begin, end),)
            else:
                part = partitions[pos]
                spans = [part[lid] for lid in live if lid in part]
                if not self._dead_interned and sum(map(len, spans)) != end - begin:
                    dfa.ensure_dead_state()
                    self._dead_interned = True
            for span in spans:
                for i in span:
                    ops += 1
                    lid = label_ids[i]
                    key = (state, lid)
                    nxt = trans.get(key)
                    if nxt is None:
                        stepped = step(state, labels_seq[lid])
                        nxt = -1 if is_dead(stepped) else stepped
                        trans[key] = nxt
                    if nxt < 0:
                        continue
                    dst = targets[i]
                    config = (dst, nxt)
                    if config not in seen:
                        seen.add(config)
                        if is_accepting(nxt):
                            results.add(dst)
                        nxt_frontier.append(config)
        self.ops += ops
        self._frontier = nxt_frontier

    def run(self, control=None) -> set[int]:
        """Drive to completion, checkpointing ``control`` between supersteps.

        ``control`` needs one method, ``checkpoint(ops: int)``, called
        with the superstep's scanned-edge count and expected to raise a
        typed :class:`~repro.resilience.ResilienceError` (deadline,
        budget, cancellation) to interrupt.  The exception propagates
        with the stepper's state intact -- :func:`rpq_nodes_checkpointed`
        is the wrapper that converts it into a partial result.
        """
        if control is not None:
            control.checkpoint(0)
        while self._frontier:
            before = self.ops
            self.step()
            if control is not None:
                control.checkpoint(self.ops - before)
        return self.results


#: Interrupt exception -> the ``kind`` recorded in the failure report.
_INTERRUPT_KINDS = {
    DeadlineExceeded: "deadline",
    QueryCancelled: "cancelled",
    BudgetExhausted: "budget",
}


def interrupted_completeness(exc: Exception, key: str, lost: int) -> Completeness:
    """The completeness report of a traversal stopped at a checkpoint.

    ``lost`` is the frontier size at the stop -- the configurations that
    were queued but never expanded (the honest work-dropped count the
    ``describe()`` rendering surfaces).
    """
    kind = _INTERRUPT_KINDS.get(type(exc), "interrupt")
    return Completeness(
        complete=False,
        failures=(
            FailureRecord(kind=kind, key=key, attempts=1, error=str(exc), lost=lost),
        ),
    )


def rpq_nodes_checkpointed(
    graph: "Graph | FrozenGraph",
    pattern: "str | PathRegex | Nfa | LazyDfa",
    start: int | None = None,
    *,
    control,
    plan_cache: "PlanCache | None" = None,
) -> "PartialResult[set[int]]":
    """:func:`rpq_nodes` under a deadline/budget/cancellation control.

    Runs the superstep stepper, checkpointing ``control`` at every
    frontier boundary.  Uninterrupted, the answer and an exact
    completeness report (merged with the graph's own, for degradable
    graphs).  Interrupted, the matches found so far as a lower bound,
    with a :class:`~repro.resilience.FailureRecord` naming the reason
    (``deadline`` / ``cancelled`` / ``budget``) and the dropped frontier
    size -- the evaluation never raises for an interrupt.
    """
    stepper = RpqStepper(graph, pattern, start, plan_cache=plan_cache)
    try:
        stepper.run(control)
    except tuple(_INTERRUPT_KINDS) as exc:
        key = getattr(control, "key", "rpq")
        report = interrupted_completeness(exc, key, stepper.frontier_size)
        return PartialResult(
            stepper.results, Completeness.merge(report, completeness_of(graph))
        )
    return PartialResult(stepper.results, completeness_of(graph))


# -- witnesses -------------------------------------------------------------------


def rpq_witnesses(
    graph: "Graph | FrozenGraph",
    pattern: "str | PathRegex | Nfa | LazyDfa",
    start: int | None = None,
    *,
    plan_cache: "PlanCache | None" = None,
    guide_mask: "dict[int, frozenset[int]] | None" = None,
) -> dict[int, tuple[Edge, ...]]:
    """A shortest witness path for every node matched by the pattern.

    Returns ``{node: (edge, edge, ...)}`` where the edge sequence spells a
    shortest label path from the start node that the regex accepts.  Used
    by Lorel path variables and by the browsing API to *show* the user
    where in the database something was found.  Witness choice is
    deterministic and layout-independent: the frozen kernel scans pruned
    edges in insertion order, so ties break exactly as on a plain graph.

    ``guide_mask`` follows the :func:`rpq_nodes` contract: sound only for
    root-origin traversals of the frozen snapshot it was computed for.
    """
    dfa = compile_rpq(pattern, plan_cache=plan_cache)
    origin = graph.root if start is None else start
    return _witness_search(graph, dfa, origin, guide_mask)[0]


def _witness_search(
    graph: "Graph | FrozenGraph",
    dfa: LazyDfa,
    origin: int,
    guide_mask: "dict[int, frozenset[int]] | None" = None,
) -> tuple[dict[int, tuple[Edge, ...]], dict]:
    """Shared witness BFS: the witness map plus the parents map.

    The parents map doubles as the explored-config set (it holds exactly
    the configurations a plain product BFS would mark seen), which is
    what lets the profiled twin account the traversal without running it
    twice.
    """
    if isinstance(graph, FrozenGraph):
        return _witness_search_frozen(graph, dfa, origin, guide_mask)
    parents: dict[tuple[int, int], tuple[tuple[int, int], Edge] | None] = {
        (origin, dfa.start): None
    }
    witnesses: dict[int, tuple[Edge, ...]] = {}
    if dfa.is_accepting(dfa.start):
        witnesses[origin] = ()
    queue = deque([(origin, dfa.start)])
    while queue:
        config = queue.popleft()
        node, state = config
        for edge in graph.edges_from(node):
            nxt_state = dfa.step(state, edge.label)
            if dfa.is_dead(nxt_state):
                continue
            nxt = (edge.dst, nxt_state)
            if nxt in parents:
                continue
            parents[nxt] = (config, edge)
            if dfa.is_accepting(nxt_state) and edge.dst not in witnesses:
                witnesses[edge.dst] = _reconstruct(parents, nxt)
            queue.append(nxt)
    return witnesses, parents


def _witness_search_frozen(
    fg: FrozenGraph,
    dfa: LazyDfa,
    origin: int,
    guide_mask: "dict[int, frozenset[int]] | None" = None,
) -> tuple[dict[int, tuple[Edge, ...]], dict]:
    """The label-pruned witness BFS (insertion-order edge scans)."""
    targets, label_ids = fg.targets, fg.label_ids
    labels_seq, index = fg.labels_seq, fg.index
    step, is_dead, is_accepting = dfa.step, dfa.is_dead, dfa.is_accepting
    parents: dict[tuple[int, int], tuple[tuple[int, int], Edge] | None] = {
        (origin, dfa.start): None
    }
    witnesses: dict[int, tuple[Edge, ...]] = {}
    if is_accepting(dfa.start):
        witnesses[origin] = ()
    queue = deque([(origin, dfa.start)])
    trans: dict[tuple[int, int], int] = {}
    live_cache: dict = {}
    while queue:
        config = queue.popleft()
        node, state = config
        pos = node if index is None else index[node]
        for i in ordered_edge_indices(fg, dfa, state, pos, live_cache, guide_mask):
            lid = label_ids[i]
            key = (state, lid)
            nxt_state = trans.get(key)
            if nxt_state is None:
                stepped = step(state, labels_seq[lid])
                nxt_state = -1 if is_dead(stepped) else stepped
                trans[key] = nxt_state
            if nxt_state < 0:
                continue
            dst = targets[i]
            nxt = (dst, nxt_state)
            if nxt in parents:
                continue
            parents[nxt] = (config, Edge(node, labels_seq[lid], dst))
            if is_accepting(nxt_state) and dst not in witnesses:
                witnesses[dst] = _reconstruct(parents, nxt)
            queue.append(nxt)
    return witnesses, parents


def _reconstruct(parents: dict, config: tuple[int, int]) -> tuple[Edge, ...]:
    """Spell out the witness path ending at ``config`` from the parents map."""
    path: list[Edge] = []
    cursor = config
    while parents[cursor] is not None:
        prev, edge = parents[cursor]
        path.append(edge)
        cursor = prev
    return tuple(reversed(path))


def rpq_witnesses_profiled(
    graph: "Graph | FrozenGraph",
    pattern: "str | PathRegex | Nfa | LazyDfa",
    start: int | None = None,
    *,
    profile: "QueryProfile | None" = None,
    plan_cache: "PlanCache | None" = None,
    guide_mask: "dict[int, frozenset[int]] | None" = None,
) -> tuple[dict[int, tuple[Edge, ...]], QueryProfile]:
    """:func:`rpq_witnesses` plus its :class:`~repro.obs.QueryProfile`.

    The witness search explores the same product configurations as
    :func:`rpq_nodes` -- its ``parents`` map *is* the ``seen`` set -- so
    the counts come straight from the single search: no second traversal,
    and the two profiled entry points report identical numbers for the
    same query (a cross-check the tests rely on).  ``guide_mask`` carries
    the same root-origin contract as in :func:`rpq_nodes`.
    """
    dfa, states_before = _resolve_plan(pattern, plan_cache)
    origin = graph.root if start is None else start
    witnesses, parents = _witness_search(graph, dfa, origin, guide_mask)
    owns_profile = profile is None
    if profile is None:
        profile = QueryProfile(
            engine="rpq-witnesses",
            query=pattern if isinstance(pattern, str) else "<compiled>",
        )
    _fill_product_counts(profile, graph, parents, states_before, dfa)
    if owns_profile:
        profile.results = len(witnesses)
    return witnesses, profile


# -- the naive baseline ----------------------------------------------------------


def naive_rpq(
    graph: "Graph | FrozenGraph",
    pattern: "str | PathRegex | Nfa",
    max_length: int,
    start: int | None = None,
) -> set[int]:
    """Baseline: enumerate label paths up to ``max_length`` and test each.

    This is what a query processor without the product construction must
    do; on branchy or cyclic data the path count explodes exponentially
    (experiment E2 measures the gap).  ``max_length`` bounds the search so
    the baseline terminates on cyclic input; results agree with
    :func:`rpq_nodes` whenever every witness fits in the bound.

    The enumeration is an explicit-stack DFS carrying the NFA state set
    incrementally along the current path (one :meth:`Nfa.step` per edge
    rather than re-matching the whole label sequence at every node), so
    deep chains neither overflow the recursion limit nor pay quadratic
    re-matching -- it is still the naive *per-path* search, just fairly
    implemented.
    """
    if isinstance(pattern, Nfa):
        nfa = pattern
    else:
        if isinstance(pattern, str):
            pattern = parse_path_regex(pattern)
        nfa = build_nfa(pattern)
    origin = graph.root if start is None else start
    results: set[int] = set()
    initial = nfa.initial()
    if nfa.is_accepting(initial):
        results.add(origin)
    if max_length <= 0:
        return results
    # parallel stacks: an edge iterator per open node on the current path,
    # and the NFA state set reached by the labels spelling that path
    iter_stack = [iter(graph.edges_from(origin))]
    state_stack = [initial]
    while iter_stack:
        edge = next(iter_stack[-1], None)
        if edge is None:
            iter_stack.pop()
            state_stack.pop()
            continue
        states = nfa.step(state_stack[-1], edge.label)
        if nfa.is_accepting(states):
            results.add(edge.dst)
        if len(iter_stack) < max_length:
            iter_stack.append(iter(graph.edges_from(edge.dst)))
            state_stack.append(states)
    return results
