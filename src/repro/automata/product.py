"""Regular path query (RPQ) evaluation: graph x automaton product.

This is the "principled strategy" behind general path expressions: run the
path regex's automaton in lockstep with a forward traversal of the graph.
The product has at most ``|nodes| x |dfa states|`` configurations, so
evaluation is polynomial even on cyclic data where naive path enumeration
diverges -- exactly why the paper wants regular expressions rather than
explicit path search.  :func:`naive_rpq` implements that naive enumeration
as the baseline for experiment E2.
"""

from __future__ import annotations

from collections import deque

from ..core.graph import Edge, Graph
from ..core.labels import Label
from ..resilience import PartialResult, completeness_of
from .dfa import LazyDfa
from .nfa import Nfa, build_nfa
from .regex import PathRegex, parse_path_regex

__all__ = [
    "compile_rpq",
    "rpq_nodes",
    "rpq_nodes_partial",
    "rpq_witnesses",
    "naive_rpq",
]


def compile_rpq(pattern: "str | PathRegex | Nfa | LazyDfa") -> LazyDfa:
    """Compile any pattern form down to a runnable lazy DFA."""
    if isinstance(pattern, LazyDfa):
        return pattern
    if isinstance(pattern, Nfa):
        return LazyDfa(pattern)
    if isinstance(pattern, str):
        pattern = parse_path_regex(pattern)
    return LazyDfa(build_nfa(pattern))


def rpq_nodes(
    graph: Graph, pattern: "str | PathRegex | Nfa | LazyDfa", start: int | None = None
) -> set[int]:
    """All nodes reachable from ``start`` (default: root) by a matching path.

    BFS over the product space ``(graph node, dfa state)``; each
    configuration is visited at most once, so the query terminates on
    cyclic graphs and runs in ``O(edges x dfa states)``.
    """
    dfa = compile_rpq(pattern)
    origin = graph.root if start is None else start
    results: set[int] = set()
    initial = (origin, dfa.start)
    if dfa.is_accepting(dfa.start):
        results.add(origin)
    seen = {initial}
    queue = deque([initial])
    while queue:
        node, state = queue.popleft()
        for edge in graph.edges_from(node):
            nxt_state = dfa.step(state, edge.label)
            if dfa.is_dead(nxt_state):
                continue
            config = (edge.dst, nxt_state)
            if config in seen:
                continue
            seen.add(config)
            if dfa.is_accepting(nxt_state):
                results.add(edge.dst)
            queue.append(config)
    return results


def rpq_nodes_partial(
    graph: Graph, pattern: "str | PathRegex | Nfa | LazyDfa", start: int | None = None
) -> "PartialResult[set[int]]":
    """:func:`rpq_nodes` with the partial-result contract made explicit.

    Over a plain graph this is :func:`rpq_nodes` plus an always-exact
    report.  Over a degradable graph (an :class:`~repro.storage.external.
    ExternalGraph` in partial mode), failed regions contribute no edges,
    the product simply never enters them, and the attached
    :class:`~repro.resilience.Completeness` report says whether the node
    set is exact or a lower bound.  RPQ answers are monotone in the
    visible graph, so a lost region can only hide matches, never forge
    them.
    """
    nodes = rpq_nodes(graph, pattern, start)
    return PartialResult(nodes, completeness_of(graph))


def rpq_witnesses(
    graph: Graph, pattern: "str | PathRegex | Nfa | LazyDfa", start: int | None = None
) -> dict[int, tuple[Edge, ...]]:
    """A shortest witness path for every node matched by the pattern.

    Returns ``{node: (edge, edge, ...)}`` where the edge sequence spells a
    shortest label path from the start node that the regex accepts.  Used
    by Lorel path variables and by the browsing API to *show* the user
    where in the database something was found.
    """
    dfa = compile_rpq(pattern)
    origin = graph.root if start is None else start
    parents: dict[tuple[int, int], tuple[tuple[int, int], Edge] | None] = {
        (origin, dfa.start): None
    }
    witnesses: dict[int, tuple[Edge, ...]] = {}

    def reconstruct(config: tuple[int, int]) -> tuple[Edge, ...]:
        path: list[Edge] = []
        cursor = config
        while parents[cursor] is not None:
            prev, edge = parents[cursor]  # type: ignore[misc]
            path.append(edge)
            cursor = prev
        return tuple(reversed(path))

    if dfa.is_accepting(dfa.start):
        witnesses[origin] = ()
    queue = deque([(origin, dfa.start)])
    while queue:
        config = queue.popleft()
        node, state = config
        for edge in graph.edges_from(node):
            nxt_state = dfa.step(state, edge.label)
            if dfa.is_dead(nxt_state):
                continue
            nxt = (edge.dst, nxt_state)
            if nxt in parents:
                continue
            parents[nxt] = (config, edge)
            if dfa.is_accepting(nxt_state) and edge.dst not in witnesses:
                witnesses[edge.dst] = reconstruct(nxt)
            queue.append(nxt)
    return witnesses


def naive_rpq(
    graph: Graph,
    pattern: "str | PathRegex | Nfa",
    max_length: int,
    start: int | None = None,
) -> set[int]:
    """Baseline: enumerate label paths up to ``max_length`` and test each.

    This is what a query processor without the product construction must
    do; on branchy or cyclic data the path count explodes exponentially
    (experiment E2 measures the gap).  ``max_length`` bounds the search so
    the baseline terminates on cyclic input; results agree with
    :func:`rpq_nodes` whenever every witness fits in the bound.
    """
    if isinstance(pattern, Nfa):
        nfa = pattern
    else:
        if isinstance(pattern, str):
            pattern = parse_path_regex(pattern)
        nfa = build_nfa(pattern)
    origin = graph.root if start is None else start
    results: set[int] = set()
    labels: list[Label] = []

    def explore(node: int) -> None:
        if nfa.matches(labels):
            results.add(node)
        if len(labels) >= max_length:
            return
        for edge in graph.edges_from(node):
            labels.append(edge.label)
            explore(edge.dst)
            labels.pop()

    explore(origin)
    return results
