"""Path regular expressions and their automata (section 3's path machinery).

* :mod:`~repro.automata.regex` -- path-regex AST, label predicates, parser;
* :mod:`~repro.automata.nfa` -- Thompson construction with predicate guards;
* :mod:`~repro.automata.dfa` -- lazy subset construction over truth vectors;
* :mod:`~repro.automata.product` -- RPQ evaluation by graph x automaton
  product (label-pruned over frozen graphs, batchable over many sources),
  plus the naive path-enumeration baseline of experiment E2;
* :mod:`~repro.automata.plan_cache` -- the bounded LRU of compiled plans.
"""

from .dfa import LazyDfa
from .nfa import Nfa, build_nfa
from .plan_cache import DEFAULT_PLAN_CACHE, PLAN_METRICS, PlanCache, cached_compile
from .product import (
    DensePlan,
    PlanTooLarge,
    compile_dense,
    compile_rpq,
    naive_rpq,
    ordered_edge_indices,
    product_bfs,
    rpq_nodes,
    rpq_nodes_many,
    rpq_nodes_partial,
    rpq_witnesses,
)
from .regex import (
    AltRE,
    AtomRE,
    ConcatRE,
    EpsilonRE,
    LabelPredicate,
    OptRE,
    PathRegex,
    PlusRE,
    RegexSyntaxError,
    StarRE,
    any_label,
    exact,
    glob_string,
    glob_symbol,
    negated,
    parse_path_regex,
    type_test,
)

__all__ = [
    "PathRegex",
    "AtomRE",
    "ConcatRE",
    "AltRE",
    "StarRE",
    "PlusRE",
    "OptRE",
    "EpsilonRE",
    "LabelPredicate",
    "exact",
    "glob_symbol",
    "glob_string",
    "any_label",
    "type_test",
    "negated",
    "parse_path_regex",
    "RegexSyntaxError",
    "Nfa",
    "build_nfa",
    "LazyDfa",
    "compile_rpq",
    "compile_dense",
    "DensePlan",
    "PlanTooLarge",
    "product_bfs",
    "ordered_edge_indices",
    "rpq_nodes",
    "rpq_nodes_many",
    "rpq_nodes_partial",
    "rpq_witnesses",
    "naive_rpq",
    "PlanCache",
    "DEFAULT_PLAN_CACHE",
    "PLAN_METRICS",
    "cached_compile",
]
