"""Views for semistructured data (section 3, citing [4]).

"Some simple forms of restructuring are also present in a view definition
language proposed in [4]" (Abiteboul-Goldman-McHugh-Vassalos-Zhuge).  A
:class:`View` names a UnQL query over named sources; it can be

* **materialized** -- evaluated once into a concrete graph, then kept
  consistent with :meth:`View.refresh` (re-evaluation; staleness is
  detectable with :meth:`View.is_stale`, equality being bisimulation);
* **queried through** -- a query posed against the view name runs against
  the materialized graph, so view users never see the base data.

A :class:`ViewCatalog` holds several views and lets later views read
earlier ones, giving the stacked view definitions of [4].
"""

from __future__ import annotations

from ..core.bisim import bisimilar
from ..core.graph import Graph
from .ast import Query
from .evaluator import evaluate_query
from .parser import parse_query

__all__ = ["View", "ViewCatalog", "ViewError"]


class ViewError(ValueError):
    """Raised on undefined views or source cycles."""


class View:
    """A named UnQL query over named source graphs."""

    def __init__(self, name: str, query: "str | Query") -> None:
        self.name = name
        self.query: Query = parse_query(query) if isinstance(query, str) else query
        self._materialized: Graph | None = None

    def materialize(self, sources: dict[str, Graph]) -> Graph:
        """Evaluate and cache the view's contents."""
        self._materialized = evaluate_query(self.query, sources)
        return self._materialized

    @property
    def graph(self) -> Graph:
        if self._materialized is None:
            raise ViewError(f"view {self.name!r} has not been materialized")
        return self._materialized

    def is_stale(self, sources: dict[str, Graph]) -> bool:
        """Would re-evaluation change the view?  (Equality = bisimulation.)"""
        if self._materialized is None:
            return True
        fresh = evaluate_query(self.query, sources)
        return not bisimilar(fresh, self._materialized)

    def refresh(self, sources: dict[str, Graph]) -> bool:
        """Re-materialize; returns True iff the contents changed."""
        old = self._materialized
        fresh = evaluate_query(self.query, sources)
        changed = old is None or not bisimilar(fresh, old)
        self._materialized = fresh
        return changed


class ViewCatalog:
    """An ordered collection of views over shared base sources.

    Views are materialized in definition order, and each view's result is
    visible (under its name) to every later view -- stacked restructuring.
    """

    def __init__(self, **base_sources: Graph) -> None:
        self._bases = dict(base_sources)
        self._views: dict[str, View] = {}
        self._order: list[str] = []

    def define(self, name: str, query: "str | Query") -> View:
        if name in self._bases or name in self._views:
            raise ViewError(f"name {name!r} is already bound")
        view = View(name, query)
        self._views[name] = view
        self._order.append(name)
        return view

    def sources_for(self, name: str) -> dict[str, Graph]:
        """Base graphs plus every *earlier* materialized view."""
        out = dict(self._bases)
        for earlier in self._order:
            if earlier == name:
                break
            out[earlier] = self._views[earlier].graph
        return out

    def materialize_all(self) -> None:
        for name in self._order:
            self._views[name].materialize(self.sources_for(name))

    def update_base(self, name: str, graph: Graph) -> list[str]:
        """Replace a base source and refresh views; returns changed views."""
        if name not in self._bases:
            raise ViewError(f"no base source named {name!r}")
        self._bases[name] = graph
        changed = []
        for vname in self._order:
            if self._views[vname].refresh(self.sources_for(vname)):
                changed.append(vname)
        return changed

    def query(self, text: "str | Query") -> Graph:
        """Run a query that may read bases and all materialized views."""
        sources = dict(self._bases)
        for name in self._order:
            sources[name] = self._views[name].graph
        parsed = parse_query(text) if isinstance(text, str) else text
        return evaluate_query(parsed, sources)

    def __getitem__(self, name: str) -> View:
        try:
            return self._views[name]
        except KeyError:
            raise ViewError(f"no view named {name!r}") from None
