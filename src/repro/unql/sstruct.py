"""Structural recursion on graphs: UnQL's computational core (section 3).

The paper: *"the starting point is that of structural recursion ... However,
some restrictions need to be placed for such recursive programs to be
well-defined: we want them to be well-defined on graphs with cycles.  These
restrictions give rise to an algebra that can be viewed as having two
components: a 'horizontal' component that expresses computations across the
edges of a given node ... and a 'vertical' component that expresses
computations that go to arbitrary depths in the graph."*

The restriction is that the body of the recursion may *use* the recursive
result of each subtree but may not inspect it; under that restriction the
recursion has **bulk semantics** (Buneman-Davidson-Hillebrand-Suciu,
SIGMOD '96): it can be evaluated by one pass over the edges of the graph,
producing one output node per input node, which is total on cyclic inputs
and agrees with the unfolding semantics up to bisimulation.

Concretely, :func:`srec` evaluates::

    srec(f)({})           = {}
    srec(f)({l: t} U s)   = f(l, t) @ srec(f)(t)  U  srec(f)(s)

where ``f(label, subtree)`` returns a *template* graph in which the marker
edge produced by :func:`rec` stands for "the recursive result of the
subtree" (the ``@`` substitution above).  The engine instantiates one
template per input edge, splices templates together with epsilon edges, and
eliminates the epsilons at the end -- the "basic graph transformation
technique" of section 4 into which "a large class of computations can be
shown to be translatable".
"""

from __future__ import annotations

from typing import Callable

from ..core.graph import Edge, Graph
from ..core.labels import Label, sym

__all__ = ["REC_MARKER", "rec", "keep_edge", "SubtreeView", "srec", "srec_tree"]

#: The marker symbol standing for "the recursive result goes here".
#: Templates must not use it as an ordinary label.
REC_MARKER = sym("@rec")


def rec() -> Graph:
    """The template "just the recursive result": ``srec`` of the subtree."""
    g = Graph()
    root = g.new_node()
    leaf = g.new_node()
    g.set_root(root)
    g.add_edge(root, REC_MARKER, leaf)
    return g


def keep_edge(label: Label) -> Graph:
    """The identity template for one edge: ``{label: REC}``."""
    return Graph.singleton(label, rec())


class SubtreeView:
    """Read-only view of the subtree at one node, passed to recursion bodies.

    The horizontal component of the algebra: a body may look *across* the
    edges of the subtree (existence tests, bounded-depth conditions) but it
    gets the vertical result only through :func:`rec`.  The view is cheap --
    no copying -- and :meth:`to_graph` materializes a copy when a body
    really wants to embed the old subtree as a constant.
    """

    __slots__ = ("_graph", "_node")

    def __init__(self, graph: Graph, node: int) -> None:
        self._graph = graph
        self._node = node

    @property
    def node(self) -> int:
        return self._node

    def edges(self) -> tuple[Edge, ...]:
        return self._graph.edges_from(self._node)

    def labels(self) -> set[Label]:
        return self._graph.labels_from(self._node)

    def has_edge(self, label: Label) -> bool:
        return any(e.label == label for e in self.edges())

    def child(self, label: Label) -> "SubtreeView | None":
        """The view at the first ``label`` successor, if any."""
        for e in self.edges():
            if e.label == label:
                return SubtreeView(self._graph, e.dst)
        return None

    def is_leaf(self) -> bool:
        return not self.edges()

    def exists_within(self, predicate: Callable[[Label], bool], depth: int) -> bool:
        """Is there an edge whose label satisfies ``predicate`` within
        ``depth`` steps?  (A bounded-depth horizontal condition.)"""
        seen = {self._node}
        frontier = [self._node]
        for _ in range(depth):
            nxt: list[int] = []
            for node in frontier:
                for e in self._graph.edges_from(node):
                    if predicate(e.label):
                        return True
                    if e.dst not in seen:
                        seen.add(e.dst)
                        nxt.append(e.dst)
            frontier = nxt
        return False

    def to_graph(self) -> Graph:
        """A copy of the subtree as a standalone graph (constant embed)."""
        return self._graph.subgraph(self._node)


#: Type of recursion bodies: (edge label, subtree view) -> template graph.
RecursionBody = Callable[[Label, SubtreeView], Graph]


def srec(graph: Graph, body: RecursionBody) -> Graph:
    """Structural recursion with bulk semantics; total on cyclic graphs.

    For every input node ``n`` the output has a node ``out(n)``; for every
    input edge ``n --l--> m`` the template ``body(l, view(m))`` is
    instantiated once, its root's edges are grafted onto ``out(n)``, and
    every ``@rec`` marker edge inside it becomes a link to ``out(m)``.
    Epsilon (graft) edges are eliminated at the end, and the result is
    garbage-collected from ``out(root)``.

    The construction touches each input edge exactly once, so it runs in
    ``O(edges x |template|)`` -- linear, which experiment E3 verifies.
    """
    out = Graph()
    out_node: dict[int, int] = {}
    reach = graph.reachable()
    for node in sorted(reach):
        out_node[node] = out.new_node()
    out.set_root(out_node[graph.root])

    # Epsilon edges collected separately, then eliminated.
    eps: dict[int, list[int]] = {}

    def add_eps(src: int, dst: int) -> None:
        eps.setdefault(src, []).append(dst)

    for node in sorted(reach):
        for edge in graph.edges_from(node):
            template = body(edge.label, SubtreeView(graph, edge.dst))
            mapping: dict[int, int] = {}
            t_reach = template.reachable()
            for t_node in sorted(t_reach):
                mapping[t_node] = out.new_node()
            for t_node in sorted(t_reach):
                for t_edge in template.edges_from(t_node):
                    if t_edge.label == REC_MARKER:
                        # the recursion point: this template node also
                        # stands for the recursive result of the target
                        add_eps(mapping[t_node], out_node[edge.dst])
                    else:
                        out.add_edge(
                            mapping[t_node], t_edge.label, mapping[t_edge.dst]
                        )
            # the template root's edges belong to out(node)
            add_eps(out_node[node], mapping[template.root])

    return _eliminate_epsilon(out, eps)


def _eliminate_epsilon(g: Graph, eps: dict[int, list[int]]) -> Graph:
    """Collapse epsilon edges: each node inherits the real edges of its
    epsilon closure.  Standard automata-style elimination; cycles of
    epsilons are safe (the closure is a set)."""
    closure_cache: dict[int, frozenset[int]] = {}

    def closure(node: int) -> frozenset[int]:
        cached = closure_cache.get(node)
        if cached is not None:
            return cached
        seen = {node}
        stack = [node]
        while stack:
            cur = stack.pop()
            for nxt in eps.get(cur, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        result = frozenset(seen)
        closure_cache[node] = result
        return result

    out = Graph()
    mapping = {node: out.new_node() for node in g.nodes()}
    out.set_root(mapping[g.root])
    for node in g.nodes():
        added: set[tuple[Label, int]] = set()
        for member in closure(node):
            for edge in g.edges_from(member):
                key = (edge.label, edge.dst)
                if key not in added:
                    added.add(key)
                    out.add_edge(mapping[node], edge.label, mapping[edge.dst])
    return out.garbage_collect()


def srec_tree(graph: Graph, body: RecursionBody, _node: int | None = None) -> Graph:
    """Reference semantics: the literal recursive definition, on trees/DAGs.

    ``srec_tree`` follows the defining equations directly and therefore
    diverges on cyclic input; it exists so the property tests can check
    that the bulk semantics of :func:`srec` agrees with the definition
    wherever the definition itself is total.
    """
    node = graph.root if _node is None else _node
    result = Graph.empty()
    for edge in graph.edges_from(node):
        template = body(edge.label, SubtreeView(graph, edge.dst))
        sub_result = srec_tree(graph, body, edge.dst)
        instantiated = _substitute_rec(template, sub_result)
        result = result.union(instantiated)
    return result


def _substitute_rec(template: Graph, replacement: Graph) -> Graph:
    """Replace every ``@rec`` marker in ``template`` by ``replacement``.

    A marker edge on node ``v`` means ``v`` *is* the recursive result, so
    ``v`` receives all of the replacement root's edges.
    """
    out = Graph()
    t_reach = template.reachable()
    mapping = {t: out.new_node() for t in sorted(t_reach)}
    out.set_root(mapping[template.root])
    # one shared copy of the replacement is fine: values are bisimulation
    # classes, sharing is unobservable.
    repl_mapping = out._absorb(replacement)
    for t_node in sorted(t_reach):
        for t_edge in template.edges_from(t_node):
            if t_edge.label == REC_MARKER:
                for r_edge in replacement.edges_from(replacement.root):
                    out.add_edge(
                        mapping[t_node], r_edge.label, repl_mapping[r_edge.dst]
                    )
            else:
                out.add_edge(mapping[t_node], t_edge.label, mapping[t_edge.dst])
    return out.garbage_collect()
