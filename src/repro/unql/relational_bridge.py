"""Relational algebra interpreted over tree-encoded relations.

Section 3's theorem about UnQL's algebra: "when restricted to input and
output data that conform to a relational (nested relational) schema, it
expresses exactly the relational (nested relational) algebra.  Hence an
SQL-like language is a natural fragment of UnQL."

This module makes the inclusion *executable*: every SPJRU operator is
implemented over the graph encoding of relations
(:func:`repro.relational.encode.relational_to_graph` shapes: a relation is
a node with ``tuple`` edges to flat records).  Select and project are
single structural recursions; union is the model's native ``U``; join and
difference are horizontal nested-loop combinations of tuple subtrees --
all of it tree transformations, none of it touching the relational
engine.  :func:`evaluate_on_trees` runs a whole
:class:`~repro.relational.algebra.RelExpr` this way, and experiment E4
checks it against :func:`repro.relational.algebra.evaluate` on random
terms and measures the cost of working on trees.
"""

from __future__ import annotations

from typing import Mapping

from ..core.graph import Graph
from ..core.labels import Label, label_of, sym
from ..relational.algebra import (
    Difference,
    Join,
    Project,
    RelExpr,
    Rename,
    Scan,
    Select,
    Union,
)
from ..relational.relation import Relation, RelationError
from .restructure import drop_edges
from .sstruct import SubtreeView

__all__ = [
    "relation_to_tree",
    "tree_to_relation",
    "evaluate_on_trees",
    "tree_nest",
    "tree_unnest",
]

_TUPLE = sym("tuple")


def relation_to_tree(rel: Relation) -> Graph:
    """Encode one relation as ``{tuple: {attr: {v: {}}, ...}, ...}``."""
    g = Graph()
    root = g.new_node()
    g.set_root(root)
    for row in sorted(rel.rows, key=repr):
        tuple_node = g.new_node()
        g.add_edge(root, _TUPLE, tuple_node)
        for attr, value in zip(rel.schema, row):
            holder = g.new_node()
            leaf = g.new_node()
            g.add_edge(tuple_node, sym(attr), holder)
            g.add_edge(holder, label_of(value), leaf)
    return g


def _record_of(graph: Graph, tuple_node: int) -> dict[str, object]:
    record: dict[str, object] = {}
    for edge in graph.edges_from(tuple_node):
        if not edge.label.is_symbol:
            raise RelationError("tuple fields must be symbol edges")
        inner = graph.edges_from(edge.dst)
        if len(inner) != 1 or not inner[0].label.is_base:
            raise RelationError("tuple fields must hold single scalars")
        record[str(edge.label.value)] = inner[0].label.value
    return record


def tree_to_relation(graph: Graph) -> Relation:
    """Decode the tree encoding back to a relation (schema = sorted attrs)."""
    records = [
        _record_of(graph, e.dst)
        for e in graph.edges_from(graph.root)
        if e.label == _TUPLE
    ]
    attrs: set[str] = set()
    for r in records:
        attrs.update(r)
    schema = tuple(sorted(attrs))
    for r in records:
        if set(r) != attrs:
            raise RelationError("ragged tuples: not relational data")
    return Relation(schema, (tuple(r[a] for a in schema) for r in records))


# -- the operators, as tree transformations ----------------------------------


def _tuple_views(graph: Graph) -> list[SubtreeView]:
    return [
        SubtreeView(graph, e.dst)
        for e in graph.edges_from(graph.root)
        if e.label == _TUPLE
    ]


def _field_value(view: SubtreeView, attr: str) -> "Label | None":
    child = view.child(sym(attr))
    if child is None:
        return None
    edges = child.edges()
    if len(edges) == 1 and edges[0].label.is_base:
        return edges[0].label
    return None


def tree_select(graph: Graph, attr: str, value: object) -> Graph:
    """sigma as one structural recursion: drop non-matching tuple edges."""
    target = label_of(value)

    def not_matching(label: Label, view: SubtreeView) -> bool:
        if label != _TUPLE:
            return False
        field = _field_value(view, attr)
        return field != target

    return drop_edges(graph, not_matching)


def tree_project(graph: Graph, attrs: tuple[str, ...]) -> Graph:
    """pi as one structural recursion: drop unprojected attribute edges.

    Duplicate elimination is free: the result is a *set* of tuples in the
    model, and equality of tuple subtrees is bisimulation.
    """
    keep = {sym(a) for a in attrs}

    def unwanted(label: Label, view: SubtreeView) -> bool:
        return label.is_symbol and label != _TUPLE and label not in keep

    # only attribute edges directly under tuples are affected; scalar
    # edges are base-labeled and symbols below values do not occur in the
    # encoding, so the global predicate is safe.
    return drop_edges(graph, unwanted)


def tree_rename(graph: Graph, old: str, new: str) -> Graph:
    source, target = sym(old), sym(new)
    return graph.map_labels(lambda lab: target if lab == source else lab)


def tree_union(left: Graph, right: Graph) -> Graph:
    """U is the model's native union of edge sets."""
    return left.union(right)


def tree_difference(left: Graph, right: Graph) -> Graph:
    """Difference by horizontal comparison of tuple records."""
    right_records = [
        tuple(sorted(_record_of(right, v.node).items())) for v in _tuple_views(right)
    ]
    right_set = set(right_records)
    out = Graph()
    root = out.new_node()
    out.set_root(root)
    for view in _tuple_views(left):
        record = tuple(sorted(_record_of(left, view.node).items()))
        if record not in right_set:
            sub = view.to_graph()
            mapping = out._absorb(sub)
            out.add_edge(root, _TUPLE, mapping[sub.root])
    return out


def tree_join(left: Graph, right: Graph) -> Graph:
    """Natural join by nested-loop combination of tuple subtrees."""
    out = Graph()
    root = out.new_node()
    out.set_root(root)
    left_views = _tuple_views(left)
    right_views = _tuple_views(right)
    for lv in left_views:
        lrec = _record_of(left, lv.node)
        for rv in right_views:
            rrec = _record_of(right, rv.node)
            shared = set(lrec) & set(rrec)
            if any(lrec[a] != rrec[a] for a in shared):
                continue
            tuple_node = out.new_node()
            out.add_edge(root, _TUPLE, tuple_node)
            merged = dict(lrec)
            merged.update(rrec)
            for attr, value in merged.items():
                holder = out.new_node()
                leaf = out.new_node()
                out.add_edge(tuple_node, sym(attr), holder)
                out.add_edge(holder, label_of(value), leaf)
    return out


def evaluate_on_trees(expr: RelExpr, catalog: Mapping[str, Relation]) -> Graph:
    """Evaluate an algebra expression entirely on tree-encoded data."""
    if isinstance(expr, Scan):
        return relation_to_tree(catalog[expr.name])
    if isinstance(expr, Select):
        return tree_select(evaluate_on_trees(expr.inner, catalog), expr.attr, expr.value)
    if isinstance(expr, Project):
        return tree_project(evaluate_on_trees(expr.inner, catalog), expr.attrs)
    if isinstance(expr, Rename):
        return tree_rename(evaluate_on_trees(expr.inner, catalog), expr.old, expr.new)
    if isinstance(expr, Join):
        return tree_join(
            evaluate_on_trees(expr.left, catalog), evaluate_on_trees(expr.right, catalog)
        )
    if isinstance(expr, Union):
        return tree_union(
            evaluate_on_trees(expr.left, catalog), evaluate_on_trees(expr.right, catalog)
        )
    if isinstance(expr, Difference):
        return tree_difference(
            evaluate_on_trees(expr.left, catalog), evaluate_on_trees(expr.right, catalog)
        )
    raise TypeError(f"unknown algebra node {type(expr).__name__}")


# -- the nested-relational extension (nest/unnest on trees) -------------------


def tree_nest(graph: Graph, by: tuple[str, ...], into: str) -> Graph:
    """Nest on trees: group tuple subtrees by their key record.

    In the model this is the *natural* operation -- nesting is just
    re-parenting: one output tuple per distinct key, whose ``into`` edge
    holds the folded members as an inner set of ``tuple`` edges.  Agrees
    with :func:`repro.relational.nested.nest` through the encoding
    (tested).
    """
    by_set = set(by)
    groups: dict[tuple, list[dict[str, object]]] = {}
    for view in _tuple_views(graph):
        record = _record_of(graph, view.node)
        key = tuple(sorted((a, v) for a, v in record.items() if a in by_set))
        rest = {a: v for a, v in record.items() if a not in by_set}
        groups.setdefault(key, []).append(rest)
    out = Graph()
    root = out.new_node()
    out.set_root(root)
    for key, members in sorted(groups.items(), key=repr):
        tuple_node = out.new_node()
        out.add_edge(root, _TUPLE, tuple_node)
        for attr, value in key:
            holder, leaf = out.new_node(), out.new_node()
            out.add_edge(tuple_node, sym(attr), holder)
            out.add_edge(holder, label_of(value), leaf)
        inner_root = out.new_node()
        out.add_edge(tuple_node, sym(into), inner_root)
        seen: set[tuple] = set()
        for rest in members:
            signature = tuple(sorted(rest.items()))
            if signature in seen:
                continue  # set semantics inside the nest
            seen.add(signature)
            inner_tuple = out.new_node()
            out.add_edge(inner_root, _TUPLE, inner_tuple)
            for attr, value in rest.items():
                holder, leaf = out.new_node(), out.new_node()
                out.add_edge(inner_tuple, sym(attr), holder)
                out.add_edge(holder, label_of(value), leaf)
    return out


def tree_unnest(graph: Graph, attr: str) -> Graph:
    """Unnest on trees: splice each inner tuple back beside its keys."""
    out = Graph()
    root = out.new_node()
    out.set_root(root)
    attr_label = sym(attr)
    for view in _tuple_views(graph):
        keys: dict[str, object] = {}
        inner_nodes: list[int] = []
        for edge in view.edges():
            if edge.label == attr_label:
                inner_nodes.extend(
                    e.dst
                    for e in graph.edges_from(edge.dst)
                    if e.label == _TUPLE
                )
            else:
                fields = graph.edges_from(edge.dst)
                if len(fields) == 1 and fields[0].label.is_base:
                    keys[str(edge.label.value)] = fields[0].label.value
        for inner in inner_nodes:
            record = dict(keys)
            record.update(_record_of(graph, inner))
            tuple_node = out.new_node()
            out.add_edge(root, _TUPLE, tuple_node)
            for name, value in record.items():
                holder, leaf = out.new_node(), out.new_node()
                out.add_edge(tuple_node, sym(name), holder)
                out.add_edge(holder, label_of(value), leaf)
    return out
