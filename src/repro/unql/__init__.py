r"""UnQL: structural recursion and the select/where language (section 3).

* :mod:`~repro.unql.sstruct` -- cycle-safe structural recursion (bulk
  semantics), the vertical component of the algebra;
* :mod:`~repro.unql.restructure` -- deep restructuring (relabel, collapse,
  drop, short-circuit, the "Bacall" fix);
* :mod:`~repro.unql.parser` / :mod:`~repro.unql.evaluator` -- the
  select/where surface language with general path expressions, label and
  tree variables;
* :mod:`~repro.unql.optimizer` -- index-driven fixed-path resolution and
  label pruning (section 4).

Quick use::

    from repro import tree
    from repro.unql import unql

    db = tree({"Entry": [{"Movie": {"Title": "Casablanca"}}]})
    titles = unql(r'select {Title: \t} where {Entry.Movie.Title: \t} in db',
                  db=db)
"""

from __future__ import annotations

from ..core.graph import Graph
from ..index import GraphIndexes
from .ast import Query
from .evaluator import UnqlRuntimeError, evaluate_query, evaluate_query_profiled
from .optimizer import evaluate_with_indexes, fixed_path_of, query_is_prunable
from .parser import UnqlSyntaxError, parse_query
from .restructure import (
    collapse_edges,
    drop_edges,
    fix_bacall,
    insert_below,
    keep_only,
    relabel,
    relabel_where,
    short_circuit,
)
from .sstruct import REC_MARKER, SubtreeView, keep_edge, rec, srec, srec_tree
from .traverse import TraverseSyntaxError, traverse
from .views import View, ViewCatalog, ViewError

__all__ = [
    "unql",
    "parse_query",
    "evaluate_query",
    "evaluate_query_profiled",
    "evaluate_with_indexes",
    "Query",
    "UnqlSyntaxError",
    "UnqlRuntimeError",
    "srec",
    "srec_tree",
    "rec",
    "keep_edge",
    "REC_MARKER",
    "SubtreeView",
    "relabel",
    "relabel_where",
    "collapse_edges",
    "drop_edges",
    "keep_only",
    "short_circuit",
    "insert_below",
    "fix_bacall",
    "fixed_path_of",
    "query_is_prunable",
    "traverse",
    "TraverseSyntaxError",
    "View",
    "ViewCatalog",
    "ViewError",
]


def unql(
    text: str, indexes: GraphIndexes | None = None, **sources: Graph
) -> Graph:
    r"""Parse and evaluate a UnQL query.

    ``sources`` supplies the databases the query's ``in <name>`` clauses
    refer to (usually just ``db=...``).  Pass ``indexes`` (built over the
    graph the query's bindings read) to enable the section-4
    optimizations; results are identical either way.

    >>> from repro import tree
    >>> db = tree({"Movie": {"Title": "Casablanca"}})
    >>> out = unql(r'select \t where {Movie.Title: \t} in db', db=db)
    >>> [e.label.value for e in out.edges_from(out.root)]
    ['Casablanca']
    """
    query = parse_query(text)
    if indexes is not None:
        return evaluate_with_indexes(query, sources, indexes)
    return evaluate_query(query, sources)
