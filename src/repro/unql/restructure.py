"""Deep restructuring operations, built on structural recursion.

Section 3: SQL-like languages "bring information to the surface, but they
are not capable of performing complex or 'deep' restructuring of the data.
Simple examples of such operations include deleting/collapsing edges with a
certain property, relabeling edges, or performing local interchanges ...
in UnQL one can write a query that corrects the egregious error in the
"Bacall" edge label.  One can also perform a number of global restructuring
functions such as deleting edges with certain properties or adding new
edges to 'short-circuit' various paths."

Every function here is a thin template over :func:`repro.unql.sstruct.srec`
and therefore total on cyclic graphs.
"""

from __future__ import annotations

from typing import Callable

from ..core.graph import Graph
from ..core.labels import Label
from .sstruct import SubtreeView, keep_edge, rec, srec

__all__ = [
    "relabel",
    "relabel_where",
    "collapse_edges",
    "drop_edges",
    "keep_only",
    "short_circuit",
    "insert_below",
    "fix_bacall",
]

LabelFn = Callable[[Label], Label]
EdgePredicate = Callable[[Label, SubtreeView], bool]


def relabel(graph: Graph, fn: LabelFn) -> Graph:
    """Rewrite every edge label through ``fn`` (deep relabeling)."""
    return srec(graph, lambda label, _view: keep_edge(fn(label)))


def relabel_where(graph: Graph, predicate: EdgePredicate, replacement: Label) -> Graph:
    """Relabel exactly the edges satisfying ``predicate``.

    The predicate sees the label *and* the subtree below the edge, so
    conditions like "a ``"Bacall"`` edge under a node that has no
    ``Credit`` sibling" are expressible -- the horizontal component at
    work.
    """

    def body(label: Label, view: SubtreeView) -> Graph:
        if predicate(label, view):
            return keep_edge(replacement)
        return keep_edge(label)

    return srec(graph, body)


def collapse_edges(graph: Graph, predicate: EdgePredicate) -> Graph:
    """Delete matching edges but keep what is below them (collapsing).

    The children of a collapsed edge are promoted to its source: the
    template for a matching edge is just ``REC``, i.e. the recursive
    result spliced in place.
    """

    def body(label: Label, view: SubtreeView) -> Graph:
        if predicate(label, view):
            return rec()
        return keep_edge(label)

    return srec(graph, body)


def drop_edges(graph: Graph, predicate: EdgePredicate) -> Graph:
    """Delete matching edges *and* everything below them (pruning)."""

    def body(label: Label, view: SubtreeView) -> Graph:
        if predicate(label, view):
            return Graph.empty()
        return keep_edge(label)

    return srec(graph, body)


def keep_only(graph: Graph, predicate: EdgePredicate) -> Graph:
    """Dual of :func:`drop_edges`: prune everything that does NOT match."""
    return drop_edges(graph, lambda lab, view: not predicate(lab, view))


def short_circuit(graph: Graph, first: Label, second: Label) -> Graph:
    """Add ``first`` edges that skip over an intermediate ``second`` step.

    Wherever the data has ``x --first--> y --second--> z`` the result also
    has ``x --first--> z`` directly ("adding new edges to short-circuit
    various paths").  Existing structure is preserved.
    """

    out = graph.copy()
    # Two-level rewrites need paired markers in full UnCAL; with a single
    # recursion marker the natural implementation is the direct graph
    # transformation the recursion would compile into anyway (section 4's
    # "basic graph transformation technique").
    new_edges: list[tuple[int, int]] = []
    for node in list(out.reachable()):
        for edge in out.edges_from(node):
            if edge.label != first:
                continue
            for hop in out.edges_from(edge.dst):
                if hop.label == second:
                    new_edges.append((node, hop.dst))
    existing = {(e.src, e.label, e.dst) for e in out.edges()}
    for src, dst in new_edges:
        if (src, first, dst) not in existing:
            existing.add((src, first, dst))
            out.add_edge(src, first, dst)
    return out


def insert_below(graph: Graph, target: Label, new_label: Label, payload: Graph) -> Graph:
    """Attach ``{new_label: payload}`` below every ``target`` edge."""

    def body(label: Label, _view: SubtreeView) -> Graph:
        if label == target:
            enriched = rec().union(Graph.singleton(new_label, payload))
            return Graph.singleton(target, enriched)
        return keep_edge(label)

    return srec(graph, body)


def fix_bacall(graph: Graph, wrong: Label, right: Label, within: Label) -> Graph:
    """The paper's running example: correct a mislabeled edge.

    Figure 1 shows ``"Bacall"`` in the cast of *Casablanca* -- the
    "egregious error" the text says UnQL can fix (Bacall was not in it;
    Bergman was).  The fix relabels ``wrong`` to ``right`` only on edges
    lying below a ``within`` edge, leaving other occurrences alone::

        fix_bacall(db, string("Bacall"), string("Bergman"), sym("Cast"))
    """

    def outer(label: Label, view: SubtreeView) -> Graph:
        if label != within:
            return keep_edge(label)
        # below a `within` edge: embed the *corrected* subtree as a value.
        corrected = relabel(
            view.to_graph(), lambda lab: right if lab == wrong else lab
        )
        return Graph.singleton(within, corrected)

    return srec(graph, outer)
