r"""Parser for the UnQL select/where surface syntax.

Grammar (whitespace-insensitive)::

    query     := 'select' construct ('where' clause (',' clause)*)?
    clause    := pattern 'in' source        -- a binding
               | condition
    source    := IDENT | '\' IDENT
    pattern   := '{' member (',' member)* '}'
    member    := edgespec ':' target
    edgespec  := '\' IDENT                  -- label variable
               | PATHREGEX                  -- see repro.automata.regex
    target    := '\' IDENT | pattern | literal
    condition := TYPECHECK '(' '\' IDENT ')'
               | operand 'like' STRING
               | operand OP operand         -- OP in = != < <= > >=
    operand   := '\' IDENT | literal
    construct := catom ('union' catom)*
    catom     := '{' cmember (',' cmember)* '}' | '\' IDENT | literal | '(' construct ')'
    cmember   := clabel ':' construct
    clabel    := IDENT | `backquoted` | STRING | NUMBER | '\' IDENT
    literal   := STRING | NUMBER | 'true' | 'false'

The edge specification inside a pattern member is handed verbatim to the
path-regex parser, so every general path expression (``Entry.Movie``,
``#``, ``(!Movie)*`` ...) works as an edge constraint.
"""

from __future__ import annotations

from ..automata.regex import parse_path_regex
from ..core.labels import Label, boolean, integer, real, string, sym
from .ast import (
    Binding,
    Comparison,
    Condition,
    Construct,
    ConstructLabel,
    ConstructLiteral,
    ConstructTree,
    ConstructUnion,
    ConstructVar,
    LabelVarEdge,
    LikeCondition,
    LiteralTarget,
    NestedPattern,
    Pattern,
    PatternMember,
    Query,
    RegexEdge,
    TreeVar,
    TypeCheck,
)

__all__ = ["parse_query", "UnqlSyntaxError"]


class UnqlSyntaxError(ValueError):
    """Raised on malformed UnQL query text."""


_TYPE_CHECKS = {"isint", "isreal", "isstring", "isbool", "issymbol", "isleaf"}
_OPS = ("!=", "<=", ">=", "=", "<", ">")


class _P:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    # -- low-level ------------------------------------------------------------

    def err(self, message: str) -> UnqlSyntaxError:
        return UnqlSyntaxError(f"{message} at position {self.pos} in {self.text!r}")

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self.skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def eat(self, ch: str) -> None:
        if self.peek() != ch:
            raise self.err(f"expected {ch!r}")
        self.pos += 1

    def at_word(self, word: str) -> bool:
        self.skip_ws()
        end = self.pos + len(word)
        if self.text[self.pos : end].lower() != word:
            return False
        return end >= len(self.text) or not (
            self.text[end].isalnum() or self.text[end] == "_"
        )

    def eat_word(self, word: str) -> None:
        if not self.at_word(word):
            raise self.err(f"expected keyword {word!r}")
        self.pos += len(word)

    def ident(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] == "_"
        ):
            self.pos += 1
        if start == self.pos:
            raise self.err("expected an identifier")
        return self.text[start : self.pos]

    def quoted(self) -> str:
        quote = self.peek()
        self.pos += 1
        out = []
        while True:
            if self.pos >= len(self.text):
                raise self.err("unterminated string")
            ch = self.text[self.pos]
            self.pos += 1
            if ch == quote:
                return "".join(out)
            if ch == "\\" and self.pos < len(self.text):
                ch = self.text[self.pos]
                self.pos += 1
            out.append(ch)

    def number(self) -> Label:
        self.skip_ws()
        start = self.pos
        if self.peek() == "-":
            self.pos += 1
        while self.pos < len(self.text) and (
            self.text[self.pos].isdigit() or self.text[self.pos] in ".eE"
        ):
            self.pos += 1
        text = self.text[start : self.pos]
        try:
            if any(c in text for c in ".eE"):
                return real(float(text))
            return integer(int(text))
        except ValueError:
            raise self.err(f"bad number {text!r}") from None

    def literal(self) -> Label:
        ch = self.peek()
        if ch in "\"'":
            return string(self.quoted())
        if self.at_word("true"):
            self.eat_word("true")
            return boolean(True)
        if self.at_word("false"):
            self.eat_word("false")
            return boolean(False)
        if ch.isdigit() or ch == "-":
            return self.number()
        raise self.err("expected a literal")

    # -- query ------------------------------------------------------------------

    def query(self) -> Query:
        self.eat_word("select")
        construct = self.construct()
        bindings: list[Binding] = []
        conditions: list[Condition] = []
        if self.at_word("where"):
            self.eat_word("where")
            while True:
                if self.peek() == "{":
                    bindings.append(self.binding())
                else:
                    conditions.append(self.condition())
                if self.peek() == ",":
                    self.eat(",")
                    continue
                break
        self.skip_ws()
        if self.pos != len(self.text):
            raise self.err("trailing input")
        if not bindings and conditions:
            raise UnqlSyntaxError("conditions require at least one binding clause")
        return Query(construct, tuple(bindings), tuple(conditions))

    # -- constructs --------------------------------------------------------------

    def construct(self) -> Construct:
        node = self.catom()
        while self.at_word("union"):
            self.eat_word("union")
            node = ConstructUnion(node, self.catom())
        return node

    def catom(self) -> Construct:
        ch = self.peek()
        if ch == "(":
            self.eat("(")
            node = self.construct()
            self.eat(")")
            return node
        if ch == "{":
            return self.construct_tree()
        if ch == "\\":
            self.eat("\\")
            return ConstructVar(self.ident())
        return ConstructLiteral(self.literal())

    def construct_tree(self) -> ConstructTree:
        self.eat("{")
        members: list[tuple[ConstructLabel, Construct]] = []
        if self.peek() == "}":
            self.eat("}")
            return ConstructTree(())
        while True:
            members.append((self.construct_label(), self._construct_value()))
            if self.peek() == ",":
                self.eat(",")
                continue
            self.eat("}")
            return ConstructTree(tuple(members))

    def _construct_value(self) -> Construct:
        self.eat(":")
        return self.construct()

    def construct_label(self) -> ConstructLabel:
        ch = self.peek()
        if ch == "\\":
            self.eat("\\")
            return ConstructLabel(var=self.ident())
        if ch == "`":
            self.pos += 1
            out = []
            while self.pos < len(self.text) and self.text[self.pos] != "`":
                out.append(self.text[self.pos])
                self.pos += 1
            if self.pos >= len(self.text):
                raise self.err("unterminated `symbol`")
            self.pos += 1
            return ConstructLabel(label=sym("".join(out)))
        if ch in "\"'":
            return ConstructLabel(label=string(self.quoted()))
        if ch.isdigit() or ch == "-":
            return ConstructLabel(label=self.number())
        return ConstructLabel(label=sym(self.ident()))

    # -- patterns ---------------------------------------------------------------------

    def binding(self) -> Binding:
        pattern = self.pattern()
        self.eat_word("in")
        if self.peek() == "\\":
            self.eat("\\")
            return Binding(pattern, self.ident(), source_is_var=True)
        return Binding(pattern, self.ident(), source_is_var=False)

    def pattern(self) -> Pattern:
        self.eat("{")
        members: list[PatternMember] = []
        if self.peek() == "}":
            self.eat("}")
            return Pattern(())
        while True:
            members.append(self.pattern_member())
            if self.peek() == ",":
                self.eat(",")
                continue
            self.eat("}")
            return Pattern(tuple(members))

    def pattern_member(self) -> PatternMember:
        if self.peek() == "\\":
            self.eat("\\")
            edge: "RegexEdge | LabelVarEdge" = LabelVarEdge(self.ident())
        else:
            edge = self.regex_edge()
        self.eat(":")
        return PatternMember(edge, self.target())

    def regex_edge(self) -> RegexEdge:
        """Scan the raw regex text up to the member's ``:`` and parse it."""
        self.skip_ws()
        start = self.pos
        in_quote: str | None = None
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if in_quote:
                if ch == "\\":
                    self.pos += 1  # skip the escaped char too
                elif ch == in_quote:
                    in_quote = None
            elif ch in "\"'`":
                in_quote = ch
            elif ch == ":":
                break
            self.pos += 1
        text = self.text[start : self.pos].strip()
        if not text:
            raise self.err("empty edge pattern")
        try:
            regex = parse_path_regex(text)
        except Exception as exc:
            raise UnqlSyntaxError(f"bad path pattern {text!r}: {exc}") from exc
        return RegexEdge(regex, text)

    def target(self):
        ch = self.peek()
        if ch == "\\":
            self.eat("\\")
            return TreeVar(self.ident())
        if ch == "{":
            return NestedPattern(self.pattern())
        return LiteralTarget(self.literal())

    # -- conditions ----------------------------------------------------------------------

    def condition(self) -> Condition:
        self.skip_ws()
        # type check: isint(\x)
        for fn in _TYPE_CHECKS:
            if self.at_word(fn):
                self.eat_word(fn)
                self.eat("(")
                self.eat("\\")
                var = self.ident()
                self.eat(")")
                return TypeCheck(fn, var)
        left, left_is_var = self.operand()
        if self.at_word("like"):
            if not left_is_var:
                raise self.err("'like' needs a variable on the left")
            self.eat_word("like")
            ch = self.peek()
            if ch not in "\"'":
                raise self.err("'like' needs a quoted pattern")
            return LikeCondition(left, self.quoted())
        self.skip_ws()
        for op in _OPS:
            if self.text[self.pos : self.pos + len(op)] == op:
                self.pos += len(op)
                right, right_is_var = self.operand()
                return Comparison(left, op, right, left_is_var, right_is_var)
        raise self.err("expected a comparison operator or 'like'")

    def operand(self) -> tuple["str | Label", bool]:
        if self.peek() == "\\":
            self.eat("\\")
            return self.ident(), True
        return self.literal(), False


def parse_query(text: str) -> Query:
    """Parse UnQL query text into a :class:`~repro.unql.ast.Query`."""
    return _P(text).query()
