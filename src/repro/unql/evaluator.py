"""Evaluator for the UnQL select/where fragment.

Semantics: a query denotes ``U { construct(env) | env in bindings }`` --
the union, over every environment produced by matching the binding
patterns, of the construct instantiated under that environment.  This is
the "select fragment" the paper says both UnQL and Lorel converge on,
evaluated here over the edge-labeled model directly (UnQL avoids object
identity "by not having object identity and exploiting a simple form of
pattern matching").

Pattern matching itself rides on the RPQ product machinery of
:mod:`repro.automata.product`, so general path expressions inside patterns
cost ``O(edges x automaton states)`` even on cyclic data.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Iterator, Mapping

from ..automata.plan_cache import PlanCache
from ..automata.product import compile_rpq, rpq_nodes, rpq_nodes_profiled
from ..core.graph import Graph
from ..core.labels import Label, LabelKind
from ..obs import QueryProfile
from .ast import (
    Binding,
    Comparison,
    Condition,
    Construct,
    ConstructLabel,
    ConstructLiteral,
    ConstructTree,
    ConstructUnion,
    ConstructVar,
    LikeCondition,
    LiteralTarget,
    NestedPattern,
    Pattern,
    Query,
    RegexEdge,
    TreeVar,
    TypeCheck,
)

__all__ = [
    "evaluate_query",
    "evaluate_query_profiled",
    "query_bindings",
    "UnqlRuntimeError",
    "Bindings",
]


class UnqlRuntimeError(ValueError):
    """Raised on evaluation errors (unknown variables/sources...)."""


#: Compiled regex-edge plans shared across unprofiled UnQL queries, keyed
#: by the edge's source text.  Profiled evaluation compiles fresh so its
#: golden-pinned ``dfa_states`` counts are independent of query history.
_PLAN_CACHE = PlanCache(name="unql_plan_cache")


def _frozen_for(graph: Graph, fcache: "dict | None"):
    """The query-local frozen snapshot of ``graph`` (traversal use only).

    Keyed by object identity and scoped to one evaluation, so a source
    graph mutated between queries can never serve a stale snapshot.  The
    graph itself is kept in the entry to pin its id.  Construct building
    and tree-variable identity still use the original graph.
    """
    if fcache is None:
        return graph
    entry = fcache.get(id(graph))
    if entry is None or entry[0] is not graph:
        frozen = graph.freeze()
        fcache[id(graph)] = (graph, frozen)
        return frozen
    return entry[1]


@dataclass(frozen=True)
class _TreeBinding:
    graph: Graph
    node: int


#: An environment: variable -> bound label or bound (graph, node) tree.
Bindings = Mapping[str, "_TreeBinding | Label"]


def evaluate_query(query: Query, sources: Mapping[str, Graph]) -> Graph:
    """Run a parsed query against named database graphs.

    ``sources`` maps the names used in ``in <name>`` clauses (typically
    just ``db``) to graphs.  Returns the result graph (the union of all
    instantiated constructs).
    """
    result = Graph.empty()
    root = result.root
    for env in _environments(query, sources):
        piece = _build_construct(query.construct, env)
        # accumulate in place: grafting each piece under the shared root
        # keeps evaluation linear in the number of bindings (a repeated
        # two-sided union would re-copy the accumulated result per env).
        mapping = result._absorb(piece)
        for edge in piece.edges_from(piece.root):
            result.add_edge(root, edge.label, mapping[edge.dst])
    return result


def evaluate_query_profiled(
    query: Query,
    sources: Mapping[str, Graph],
    *,
    query_text: str = "",
    tracer=None,
) -> tuple[Graph, QueryProfile]:
    """:func:`evaluate_query` plus a :class:`~repro.obs.QueryProfile`.

    Counts accumulate over every pattern-matching sub-operation: the RPQ
    products run for regex edges, the one-step scans for label-variable
    edges, and the binding environments that survive the conditions.
    ``results`` is the number of construct pieces grafted under the
    answer root.  Counts are deterministic for a fixed query and
    database (asserted by the golden-profile suite).
    """
    profile = QueryProfile(engine="unql", query=query_text)

    def run() -> Graph:
        result = Graph.empty()
        root = result.root
        for env in _environments(query, sources, profile=profile):
            profile.bindings_produced += 1
            piece = _build_construct(query.construct, env)
            mapping = result._absorb(piece)
            for edge in piece.edges_from(piece.root):
                result.add_edge(root, edge.label, mapping[edge.dst])
                profile.results += 1
        return result

    if tracer is not None:
        with tracer.span("unql", query=query_text) as span:
            result = run()
            span.annotate(bindings=profile.bindings_produced, results=profile.results)
    else:
        result = run()
    return result, profile


def query_bindings(
    query: Query, sources: Mapping[str, Graph]
) -> list[dict[str, object]]:
    """The binding environments a query produces, without constructing.

    Tree variables appear as graph node ids, label variables as
    :class:`~repro.core.labels.Label` values.  This is the observable the
    relational translation of :mod:`repro.relational.translate` must agree
    with, and a useful debugging view of pattern matching.
    """
    out = []
    for env in _environments(query, sources):
        flat: dict[str, object] = {}
        for var, bound in env.items():
            flat[var] = bound.node if isinstance(bound, _TreeBinding) else bound
        out.append(flat)
    return out


def _environments(
    query: Query,
    sources: Mapping[str, Graph],
    profile: "QueryProfile | None" = None,
) -> Iterator[dict[str, object]]:
    # unprofiled runs route regex-edge traversal through frozen snapshots
    # (profiled runs stay on the plain graph so counts match the goldens)
    fcache: "dict | None" = {} if profile is None else None
    envs: list[dict[str, object]] = [{}]
    for binding in query.bindings:
        envs = [
            extended
            for env in envs
            for extended in _match_binding(binding, env, sources, profile, fcache)
        ]
        if not envs:
            return
    for env in envs:
        if all(_check_condition(c, env) for c in query.conditions):
            yield env


def _match_binding(
    binding: Binding,
    env: dict[str, object],
    sources: Mapping[str, Graph],
    profile: "QueryProfile | None" = None,
    fcache: "dict | None" = None,
) -> Iterator[dict[str, object]]:
    if binding.source_is_var:
        bound = env.get(binding.source)
        if not isinstance(bound, _TreeBinding):
            raise UnqlRuntimeError(
                f"'in \\{binding.source}' needs a bound tree variable"
            )
        graph, node = bound.graph, bound.node
    else:
        try:
            graph = sources[binding.source]
        except KeyError:
            raise UnqlRuntimeError(
                f"no database named {binding.source!r} was supplied"
            ) from None
        node = graph.root
    yield from _match_pattern(binding.pattern, graph, node, env, profile, fcache)


def _match_pattern(
    pattern: Pattern,
    graph: Graph,
    node: int,
    env: dict[str, object],
    profile: "QueryProfile | None" = None,
    fcache: "dict | None" = None,
) -> Iterator[dict[str, object]]:
    """All extensions of ``env`` under which ``pattern`` matches at ``node``."""
    envs = [env]
    for member in pattern.members:
        next_envs: list[dict[str, object]] = []
        # An optimizer-annotated edge carries its target set precomputed
        # from the path index (see repro.unql.optimizer).
        precomputed = getattr(member.edge, "targets", None)
        dfa = None
        if precomputed is None and isinstance(member.edge, RegexEdge):
            if profile is None:
                edge = member.edge
                dfa = _PLAN_CACHE.get(edge.text, lambda: compile_rpq(edge.regex))
            else:
                dfa = compile_rpq(member.edge.regex)
                # a fresh compile: its start state is work this query did
                profile.dfa_states += dfa.num_materialized_states
        # The regex's target set depends only on (graph, node, dfa), not
        # on the environment: evaluate it once for the whole env column
        # rather than once per environment, over the frozen snapshot.
        # Root-origin edges additionally route through the planner, which
        # answers from the path index or DataGuide when they cover the
        # pattern and otherwise guide-prunes the kernel traversal.
        shared_targets = None
        if dfa is not None and profile is None:
            frozen = _frozen_for(graph, fcache)
            if node == graph.root:
                from ..planner import planner_for

                planner = planner_for(frozen, plan_cache=_PLAN_CACHE)
                shared_targets = sorted(planner.rpq(member.edge.text))
            else:
                shared_targets = sorted(rpq_nodes(frozen, dfa, start=node))
        for current in envs:
            if precomputed is not None:
                if profile is not None:
                    profile.index_hits += 1
                for target_node in sorted(precomputed):
                    next_envs.extend(
                        _match_target(
                            member.target, graph, target_node, current, profile, fcache
                        )
                    )
            elif dfa is not None:
                if shared_targets is not None:
                    targets_sorted = shared_targets
                else:
                    targets, _ = rpq_nodes_profiled(
                        graph, dfa, start=node, profile=profile
                    )
                    targets_sorted = sorted(targets)
                for target_node in targets_sorted:
                    next_envs.extend(
                        _match_target(
                            member.target, graph, target_node, current, profile, fcache
                        )
                    )
            else:  # label variable edge: one step, binding the label
                var = member.edge.var
                out_edges = graph.edges_from(node)
                if profile is not None:
                    profile.nodes_visited += 1
                    profile.edges_expanded += len(out_edges)
                for edge in out_edges:
                    bound = current.get(var)
                    if bound is not None and bound != edge.label:
                        continue
                    extended = dict(current)
                    extended[var] = edge.label
                    next_envs.extend(
                        _match_target(
                            member.target, graph, edge.dst, extended, profile, fcache
                        )
                    )
        envs = next_envs
        if not envs:
            return
    yield from envs


def _match_target(
    target,
    graph: Graph,
    node: int,
    env: dict[str, object],
    profile: "QueryProfile | None" = None,
    fcache: "dict | None" = None,
) -> Iterator[dict[str, object]]:
    if isinstance(target, TreeVar):
        bound = env.get(target.var)
        candidate = _TreeBinding(graph, node)
        if bound is not None:
            # Repeated tree variables must bind the same node (identity in
            # the matching sense, not value equality).
            if not isinstance(bound, _TreeBinding) or bound.node != node or bound.graph is not graph:
                return
            yield env
            return
        extended = dict(env)
        extended[target.var] = candidate
        yield extended
        return
    if isinstance(target, LiteralTarget):
        # The node must encode the scalar: an outgoing edge with that base
        # label (the {v: {}} encoding of section 2).
        if any(e.label == target.label for e in graph.edges_from(node)):
            yield env
        return
    if isinstance(target, NestedPattern):
        yield from _match_pattern(target.pattern, graph, node, env, profile, fcache)
        return
    raise UnqlRuntimeError(f"unknown target {target!r}")


# -- conditions -------------------------------------------------------------


def _value_of(operand, is_var: bool, env: dict[str, object]):
    """Resolve an operand to a comparable Python value.

    A label variable yields its label's value; a tree variable coerces to
    a scalar when the tree encodes one (Lorel-flavoured coercion), else to
    a sentinel that fails every comparison.
    """
    if not is_var:
        assert isinstance(operand, Label)
        return operand.value
    bound = env.get(operand)
    if bound is None:
        raise UnqlRuntimeError(f"unbound variable \\{operand}")
    if isinstance(bound, Label):
        return bound.value
    assert isinstance(bound, _TreeBinding)
    edges = bound.graph.edges_from(bound.node)
    if len(edges) == 1 and edges[0].label.is_base:
        return edges[0].label.value
    return _NO_VALUE


class _NoValue:
    """Sentinel: a tree with no scalar coercion; all comparisons fail."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<no scalar value>"


_NO_VALUE = _NoValue()


def _check_condition(cond: Condition, env: dict[str, object]) -> bool:
    if isinstance(cond, Comparison):
        left = _value_of(cond.left, cond.left_is_var, env)
        right = _value_of(cond.right, cond.right_is_var, env)
        if left is _NO_VALUE or right is _NO_VALUE:
            return False
        return _compare(left, cond.op, right)
    if isinstance(cond, LikeCondition):
        value = _value_of(cond.var, True, env)
        if not isinstance(value, str):
            return False
        return fnmatch.fnmatchcase(value, cond.pattern.replace("%", "*"))
    if isinstance(cond, TypeCheck):
        bound = env.get(cond.var)
        if bound is None:
            raise UnqlRuntimeError(f"unbound variable \\{cond.var}")
        if isinstance(bound, _TreeBinding):
            if cond.func == "isleaf":
                return bound.graph.out_degree(bound.node) == 0
            edges = bound.graph.edges_from(bound.node)
            if len(edges) != 1 or not edges[0].label.is_base:
                return False
            label = edges[0].label
        else:
            label = bound
            if cond.func == "isleaf":
                return False
        return {
            "isint": label.kind is LabelKind.INT,
            "isreal": label.kind is LabelKind.REAL,
            "isstring": label.kind is LabelKind.STRING,
            "isbool": label.kind is LabelKind.BOOL,
            "issymbol": label.kind is LabelKind.SYMBOL,
        }.get(cond.func, False)
    raise UnqlRuntimeError(f"unknown condition {cond!r}")


def _compare(left, op: str, right) -> bool:
    # Numeric kinds compare across int/real; mixed other types never match
    # except for (in)equality, mirroring Lorel's forgiving comparisons.
    numeric = isinstance(left, (int, float)) and isinstance(right, (int, float))
    same_type = type(left) is type(right)
    if op == "=":
        return left == right if (numeric or same_type) else False
    if op == "!=":
        return left != right if (numeric or same_type) else True
    if not (numeric or same_type):
        return False
    try:
        return {
            "<": left < right,
            "<=": left <= right,
            ">": left > right,
            ">=": left >= right,
        }[op]
    except TypeError:
        return False


# -- constructs ----------------------------------------------------------------


def _build_construct(construct: Construct, env: dict[str, object]) -> Graph:
    if isinstance(construct, ConstructLiteral):
        return Graph.singleton(construct.label)
    if isinstance(construct, ConstructVar):
        bound = env.get(construct.var)
        if bound is None:
            raise UnqlRuntimeError(f"unbound variable \\{construct.var}")
        if isinstance(bound, Label):
            # a label variable used as a value: the scalar {label: {}}
            return Graph.singleton(bound)
        assert isinstance(bound, _TreeBinding)
        return bound.graph.subgraph(bound.node)
    if isinstance(construct, ConstructUnion):
        return _build_construct(construct.left, env).union(
            _build_construct(construct.right, env)
        )
    if isinstance(construct, ConstructTree):
        result = Graph.empty()
        for clabel, child in construct.members:
            label = _resolve_label(clabel, env)
            result = result.union(Graph.singleton(label, _build_construct(child, env)))
        return result
    raise UnqlRuntimeError(f"unknown construct {construct!r}")


def _resolve_label(clabel: ConstructLabel, env: dict[str, object]) -> Label:
    if clabel.label is not None:
        return clabel.label
    bound = env.get(clabel.var or "")
    if bound is None:
        raise UnqlRuntimeError(f"unbound label variable \\{clabel.var}")
    if isinstance(bound, Label):
        return bound
    assert isinstance(bound, _TreeBinding)
    edges = bound.graph.edges_from(bound.node)
    if len(edges) == 1 and edges[0].label.is_base:
        return edges[0].label
    raise UnqlRuntimeError(
        f"tree variable \\{clabel.var} has no scalar value usable as a label"
    )
