"""Query optimizations for the UnQL fragment (section 4).

Two of the optimizations the paper sketches are implemented here:

* **Fixed-path short-circuiting.**  A pattern edge that is a pure
  concatenation of exact labels (``Entry.Movie.Title``) does not need the
  automaton product at all: if a :class:`~repro.index.PathIndex` covers the
  path, its targets come straight out of the index ("the addition of path
  ... indices on labels").
* **Label pruning.**  A pattern edge mentioning an exact label that occurs
  nowhere in the database (checked against the
  :class:`~repro.index.LabelIndex`) can only produce the empty binding set,
  so the whole conjunctive clause -- and with it the query, if it was the
  only binding -- is pruned before any traversal happens.

Both rewrites are *safe*: they never change the answer, only the work.
:func:`fixed_path_of` is also reused by the schema-based pruning of
:mod:`repro.schema.prune`.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..automata.regex import AtomRE, ConcatRE, PathRegex
from ..core.graph import Graph
from ..core.labels import Label
from ..index import GraphIndexes
from .ast import Binding, NestedPattern, Pattern, PatternMember, Query, RegexEdge
from .evaluator import evaluate_query

__all__ = ["fixed_path_of", "query_is_prunable", "evaluate_with_indexes"]


def fixed_path_of(regex: PathRegex) -> tuple[Label, ...] | None:
    """The label sequence of a pure exact-concat regex, else ``None``."""
    if isinstance(regex, AtomRE):
        if regex.predicate.is_exact:
            return (regex.predicate.exact_label,)
        return None
    if isinstance(regex, ConcatRE):
        left = fixed_path_of(regex.left)
        right = fixed_path_of(regex.right)
        if left is None or right is None:
            return None
        return left + right
    return None


def _exact_labels_in_pattern(pattern: Pattern) -> Iterator[Label]:
    """Every exact label that a pattern *requires* on some edge."""
    for member in pattern.members:
        if isinstance(member.edge, RegexEdge):
            path = fixed_path_of(member.edge.regex)
            if path is not None:
                yield from path
        if isinstance(member.target, NestedPattern):
            yield from _exact_labels_in_pattern(member.target.pattern)


def query_is_prunable(query: Query, indexes: GraphIndexes) -> bool:
    """True iff some required exact label is absent from the database.

    Such a query has an empty answer; the label index proves it without
    touching the graph.
    """
    for binding in query.bindings:
        if binding.source_is_var:
            continue
        for label in _exact_labels_in_pattern(binding.pattern):
            if indexes.label.count(label) == 0:
                return True
    return False


def _member_index_targets(
    member: PatternMember, indexes: GraphIndexes
) -> frozenset[int] | None:
    """Index-resolved target nodes for a fixed-path member, if covered."""
    if not isinstance(member.edge, RegexEdge):
        return None
    path = fixed_path_of(member.edge.regex)
    if path is None:
        return None
    return indexes.path.lookup(path)


def evaluate_with_indexes(
    query: Query, sources: Mapping[str, Graph], indexes: GraphIndexes
) -> Graph:
    """Evaluate a query with both optimizations enabled.

    ``indexes`` must be built over the graph bound to the *first* source
    name used by the query's root-level bindings (the common single-``db``
    case; multi-source queries fall back to plain evaluation for the other
    sources).
    """
    if query_is_prunable(query, indexes):
        return Graph.empty()
    rewritten = _rewrite_fixed_paths(query, indexes)
    return evaluate_query(rewritten, sources)


def _rewrite_fixed_paths(query: Query, indexes: GraphIndexes) -> Query:
    """Replace index-covered fixed-path members by precomputed target sets.

    The rewrite happens by substituting the member's regex with an
    :class:`_IndexResolvedEdge`, which the evaluator treats as "iterate
    exactly these nodes" (it subclasses RegexEdge, so unoptimized engines
    still see a valid regex and correctness is preserved even if the
    evaluator ignores the annotation).
    """
    new_bindings = []
    for binding in query.bindings:
        if binding.source_is_var:
            new_bindings.append(binding)
            continue
        members = []
        for member in binding.pattern.members:
            targets = _member_index_targets(member, indexes)
            if targets is None:
                members.append(member)
            else:
                members.append(
                    PatternMember(
                        _IndexResolvedEdge(
                            member.edge.regex, member.edge.text, targets
                        ),
                        member.target,
                    )
                )
        new_bindings.append(
            Binding(Pattern(tuple(members)), binding.source, binding.source_is_var)
        )
    return Query(query.construct, tuple(new_bindings), query.conditions)


class _IndexResolvedEdge(RegexEdge):
    """A RegexEdge carrying its precomputed target node set."""

    def __init__(self, regex: PathRegex, text: str, targets: frozenset[int]) -> None:
        object.__setattr__(self, "regex", regex)
        object.__setattr__(self, "text", text)
        object.__setattr__(self, "targets", targets)
