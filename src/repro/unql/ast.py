"""Abstract syntax of the UnQL select/where fragment.

The surface form follows the paper's description of UnQL's "select"
fragment: a *construct* template built from the tree constructors, a list
of *binding* clauses that pattern-match the database, and *conditions* over
the bound variables.  Pattern edges may be general path expressions (the
regular expressions of section 3) and a ``\\x`` edge position binds a label
variable -- "label variables, tree variables and possibly path variables
are needed to express a reasonable set of queries".

Example (the paper's movie database)::

    select {Result: \\t}
    where {Entry.Movie: {Title: \\t, Cast.#: "Allen"}} in db

"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..automata.regex import PathRegex
from ..core.labels import Label

__all__ = [
    "Query",
    "Pattern",
    "PatternMember",
    "EdgeSpec",
    "RegexEdge",
    "LabelVarEdge",
    "TargetSpec",
    "TreeVar",
    "NestedPattern",
    "LiteralTarget",
    "Binding",
    "Condition",
    "Comparison",
    "LikeCondition",
    "TypeCheck",
    "Construct",
    "ConstructVar",
    "ConstructLiteral",
    "ConstructTree",
    "ConstructUnion",
    "ConstructLabel",
]


# -- patterns ---------------------------------------------------------------


@dataclass(frozen=True)
class RegexEdge:
    """An edge position constrained by a path regular expression."""

    regex: PathRegex
    text: str  # original source text, for error messages / optimizer


@dataclass(frozen=True)
class LabelVarEdge:
    """An edge position that binds the edge's label to a variable."""

    var: str


EdgeSpec = Union[RegexEdge, LabelVarEdge]


@dataclass(frozen=True)
class TreeVar:
    """Target ``\\t``: bind the reached node as a tree variable."""

    var: str


@dataclass(frozen=True)
class LiteralTarget:
    """Target literal: the reached node must encode this scalar value."""

    label: Label


@dataclass(frozen=True)
class NestedPattern:
    """Target sub-pattern, matched at the reached node."""

    pattern: "Pattern"


TargetSpec = Union[TreeVar, LiteralTarget, NestedPattern]


@dataclass(frozen=True)
class PatternMember:
    edge: EdgeSpec
    target: TargetSpec


@dataclass(frozen=True)
class Pattern:
    """``{ member, member, ... }`` -- all members must match (conjunction)."""

    members: tuple[PatternMember, ...]


@dataclass(frozen=True)
class Binding:
    """``pattern in source``: match the pattern against a database root
    (``source`` names a keyword argument of :func:`repro.unql.unql`) or
    against a previously bound tree variable (``in \\t``)."""

    pattern: Pattern
    source: str
    source_is_var: bool = False


# -- conditions -----------------------------------------------------------------


@dataclass(frozen=True)
class Comparison:
    """``\\x op literal`` or ``\\x op \\y`` with op in = != < <= > >=."""

    left: "str | Label"
    op: str
    right: "str | Label"
    left_is_var: bool = True
    right_is_var: bool = False


@dataclass(frozen=True)
class LikeCondition:
    """``\\x like "pat%"`` -- ``%``-wildcard match on the textual value."""

    var: str
    pattern: str


@dataclass(frozen=True)
class TypeCheck:
    """``isint(\\x)`` etc. -- the dynamic type predicates of section 2."""

    func: str
    var: str


Condition = Union[Comparison, LikeCondition, TypeCheck]


# -- constructs --------------------------------------------------------------------


@dataclass(frozen=True)
class ConstructVar:
    """``\\t``: splice the tree bound to the variable."""

    var: str


@dataclass(frozen=True)
class ConstructLiteral:
    """A scalar: the singleton ``{v: {}}``."""

    label: Label


@dataclass(frozen=True)
class ConstructLabel:
    """An edge label in a construct: fixed, or a bound label variable."""

    label: Label | None = None
    var: str | None = None


@dataclass(frozen=True)
class ConstructTree:
    """``{ l1: c1, l2: c2, ... }``."""

    members: tuple[tuple[ConstructLabel, "Construct"], ...]


@dataclass(frozen=True)
class ConstructUnion:
    left: "Construct"
    right: "Construct"


Construct = Union[ConstructVar, ConstructLiteral, ConstructTree, ConstructUnion]


@dataclass(frozen=True)
class Query:
    """A full ``select ... where ...`` query."""

    construct: Construct
    bindings: tuple[Binding, ...]
    conditions: tuple[Condition, ...]
