r"""Surface syntax for deep restructuring: the ``traverse`` statement.

Section 3 credits UnQL with restructurings that select/where cannot
express -- "deleting/collapsing edges with a certain property, relabeling
edges", short-circuiting paths.  The library operations live in
:mod:`repro.unql.restructure`; this module gives them a concrete syntax so
the CLI and scripts can use them without writing Python::

    traverse db replace Movie => Film
    traverse db replace "Bacall" => "Bergman" under Cast
    traverse db delete keyword            -- drop edge and subtree
    traverse db collapse wrapper          -- drop edge, keep children
    traverse db shortcut Part over Subpart

Labels follow the usual convention: bare identifiers are symbols, quoted
text is string data, numbers are numeric labels.  One statement per call;
the result is a new graph (sources are never mutated).
"""

from __future__ import annotations

from ..core.graph import Graph
from ..core.labels import Label, boolean, integer, real, string, sym
from .restructure import collapse_edges, drop_edges, fix_bacall, relabel, short_circuit

__all__ = ["traverse", "TraverseSyntaxError"]


class TraverseSyntaxError(ValueError):
    """Raised on malformed traverse statements."""


class _P:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def err(self, message: str) -> TraverseSyntaxError:
        return TraverseSyntaxError(f"{message} in {self.text!r}")

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self.skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def word(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] == "_"
        ):
            self.pos += 1
        if start == self.pos:
            raise self.err("expected a word")
        return self.text[start : self.pos]

    def label(self) -> Label:
        ch = self.peek()
        if ch in "\"'":
            quote = ch
            self.pos += 1
            out = []
            while True:
                if self.pos >= len(self.text):
                    raise self.err("unterminated string")
                c = self.text[self.pos]
                self.pos += 1
                if c == quote:
                    return string("".join(out))
                if c == "\\" and self.pos < len(self.text):
                    c = self.text[self.pos]
                    self.pos += 1
                out.append(c)
        if ch == "`":
            self.pos += 1
            end = self.text.find("`", self.pos)
            if end < 0:
                raise self.err("unterminated `symbol`")
            name = self.text[self.pos : end]
            self.pos = end + 1
            return sym(name)
        if ch.isdigit() or ch == "-":
            start = self.pos
            if ch == "-":
                self.pos += 1
            dotted = False
            while self.pos < len(self.text) and (
                self.text[self.pos].isdigit()
                or (self.text[self.pos] == "." and not dotted)
            ):
                dotted = dotted or self.text[self.pos] == "."
                self.pos += 1
            text = self.text[start : self.pos]
            try:
                return real(float(text)) if dotted else integer(int(text))
            except ValueError:
                raise self.err(f"bad number {text!r}") from None
        token = self.word()
        if token == "true":
            return boolean(True)
        if token == "false":
            return boolean(False)
        return sym(token)

    def keyword(self, *options: str) -> str:
        save = self.pos
        token = self.word().lower()
        if token not in options:
            self.pos = save
            raise self.err(f"expected one of {options}, got {token!r}")
        return token

    def arrow(self) -> None:
        self.skip_ws()
        if self.text[self.pos : self.pos + 2] != "=>":
            raise self.err("expected '=>'")
        self.pos += 2

    def end(self) -> None:
        self.skip_ws()
        if self.pos != len(self.text):
            raise self.err("trailing input")


def traverse(statement: str, **sources: Graph) -> Graph:
    """Parse and run one traverse statement against a named source.

    >>> from repro.core.builder import from_obj, to_obj
    >>> g = from_obj({"Movie": {"Title": "Casablanca"}})
    >>> out = traverse("traverse db replace Movie => Film", db=g)
    >>> to_obj(out)
    {'Film': {'Title': 'Casablanca'}}
    """
    p = _P(statement)
    p.keyword("traverse")
    source_name = p.word()
    try:
        graph = sources[source_name]
    except KeyError:
        raise TraverseSyntaxError(
            f"no database named {source_name!r} was supplied"
        ) from None
    op = p.keyword("replace", "delete", "collapse", "shortcut")
    if op == "replace":
        old = p.label()
        p.arrow()
        new = p.label()
        scope: "Label | None" = None
        if p.peek():
            p.keyword("under")
            scope = p.label()
            p.end()
            return fix_bacall(graph, old, new, scope)
        return relabel(graph, lambda lab: new if lab == old else lab)
    if op == "delete":
        target = p.label()
        p.end()
        return drop_edges(graph, lambda lab, view: lab == target)
    if op == "collapse":
        target = p.label()
        p.end()
        return collapse_edges(graph, lambda lab, view: lab == target)
    # shortcut
    first = p.label()
    p.keyword("over")
    second = p.label()
    p.end()
    return short_circuit(graph, first, second)
