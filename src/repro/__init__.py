"""repro -- a reproduction of "Semistructured Data" (Buneman, PODS 1997).

The package implements the full system inventory of the tutorial: the
edge-labeled graph data model and its OEM / node-labeled variants, the UnQL
language with cycle-safe structural recursion, a Lorel-style SQL-like
language with general path expressions, graph datalog, the relational
encoding and the UnQL-to-relational translation, label/value/path indexes,
graph schemas with simulation-based conformance, DataGuides, representative
objects, distributed query decomposition, and a clustered storage layer.

Quickstart::

    from repro import tree
    from repro.unql import unql

    db = tree({"Entry": [{"Movie": {"Title": "Casablanca",
                                    "Cast": ["Bogart", "Bacall"]}}]})
    result = unql('select t where {Entry: {Movie: {Title: \\t}}} in db', db=db)

See README.md for the architecture overview and examples/ for runnable
programs.
"""

from .core import (
    Graph,
    Label,
    LabelKind,
    OemDatabase,
    bisimilar,
    from_obj,
    graph_to_oem,
    integer,
    label_of,
    oem_to_graph,
    real,
    reduce_graph,
    render,
    string,
    sym,
    to_obj,
    tree,
)

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "Label",
    "LabelKind",
    "OemDatabase",
    "bisimilar",
    "from_obj",
    "to_obj",
    "tree",
    "render",
    "reduce_graph",
    "sym",
    "string",
    "integer",
    "real",
    "label_of",
    "oem_to_graph",
    "graph_to_oem",
    "__version__",
]
