"""Physical indexes for semistructured data (section 4).

Four structures, combinable through :class:`GraphIndexes`:

* :class:`~repro.index.label_index.LabelIndex` -- label -> edges;
* :class:`~repro.index.value_index.ValueIndex` -- sorted access to base
  data (exact / range / prefix);
* :class:`~repro.index.text_index.TextIndex` -- IR-style word postings
  over string data;
* :class:`~repro.index.path_index.PathIndex` -- materialized root paths
  up to a depth bound.
"""

from __future__ import annotations

from ..core.graph import Graph
from .label_index import LabelIndex
from .path_index import PathIndex, StaleIndexError
from .text_index import TextIndex, tokenize
from .value_index import ValueIndex

__all__ = [
    "LabelIndex",
    "ValueIndex",
    "TextIndex",
    "PathIndex",
    "StaleIndexError",
    "GraphIndexes",
    "tokenize",
]


class GraphIndexes:
    """A bundle of all four indexes over one graph, built lazily.

    The query engines take an optional ``GraphIndexes``; each index is
    constructed the first time a query needs it, so unindexed workloads
    pay nothing.
    """

    def __init__(self, graph: Graph, path_depth: int = 4) -> None:
        self._graph = graph
        self._path_depth = path_depth
        self._label: LabelIndex | None = None
        self._value: ValueIndex | None = None
        self._text: TextIndex | None = None
        self._path: PathIndex | None = None

    @property
    def label(self) -> LabelIndex:
        if self._label is None:
            self._label = LabelIndex(self._graph)
        return self._label

    @property
    def value(self) -> ValueIndex:
        if self._value is None:
            self._value = ValueIndex(self._graph)
        return self._value

    @property
    def text(self) -> TextIndex:
        if self._text is None:
            self._text = TextIndex(self._graph)
        return self._text

    @property
    def path(self) -> PathIndex:
        if self._path is None or self._path.is_stale():
            # unlike the other three (whose staleness is incompleteness,
            # documented and pinned), a stale path index is *wrong*: its
            # target sets may answer a covered path incorrectly.  The
            # bundle rebuilds it transparently; direct PathIndex holders
            # get StaleIndexError from lookup instead.
            self._path = PathIndex(self._graph, max_depth=self._path_depth)
        return self._path

    def build_all(self) -> "GraphIndexes":
        """Force-construct every index (benchmarks use this for fairness)."""
        _ = self.label, self.value, self.text, self.path
        return self

    def refresh(self) -> "GraphIndexes":
        """Drop every built index so the next access rebuilds it.

        The indexes snapshot the graph at construction; after mutating
        the graph they are *stale* (documented, and pinned by the index
        test suite).  ``refresh`` is the supported way back to agreement
        with the live graph.  When the mutation is a known set of edge
        deltas, :meth:`apply_delta` is the cheap alternative.
        """
        self._label = self._value = self._text = self._path = None
        return self

    def apply_delta(self, new_edges) -> "GraphIndexes":
        """Maintain every *built* index incrementally from edge deltas.

        The MVCC store calls this per commit with the newly visible
        edges (each delivered exactly once).  Indexes nobody has built
        yet stay unbuilt -- they will construct fresh, hence current, on
        first access.  After the call the path index is fresh without a
        rebuild: the ``StaleIndexError``-free write path.
        """
        new_edges = list(new_edges)
        if new_edges:
            if self._label is not None:
                self._label.refresh(new_edges)
            if self._value is not None:
                self._value.refresh(new_edges)
            if self._text is not None:
                self._text.refresh(new_edges)
        if self._path is not None:
            # even an empty delta re-stamps freshness: a node-only commit
            # bumps the graph version without touching any path
            self._path.refresh(new_edges)
        return self

    def _built(self) -> dict[str, object]:
        return {
            name: idx
            for name, idx in (
                ("label", self._label),
                ("value", self._value),
                ("text", self._text),
                ("path", self._path),
            )
            if idx is not None
        }

    def accounting(self) -> dict[str, dict[str, int]]:
        """Per-index hit/miss counts for every index built so far.

        Only constructed indexes appear -- an index nobody queried was
        never built and has nothing to report.
        """
        return {
            name: {"hits": idx.hits, "misses": idx.misses}
            for name, idx in self._built().items()
        }

    @property
    def total_hits(self) -> int:
        return sum(idx.hits for idx in self._built().values())

    @property
    def total_misses(self) -> int:
        return sum(idx.misses for idx in self._built().values())

    def reset_accounting(self) -> "GraphIndexes":
        """Zero every built index's hit/miss counters (per-query deltas)."""
        for idx in self._built().values():
            idx.hits = 0
            idx.misses = 0
        return self
