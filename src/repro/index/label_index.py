"""Label index: which edges carry which label.

Section 4 suggests "the addition of path or text indices on labels and
strings" as the first optimization for semistructured query processing.
The label index is the simplest of these: an inverted map from each label
to the edges carrying it.  Queries that start from a known attribute name
(``select ... where Entry.Movie...``) use it to avoid full traversal, and
the browsing query "what objects have an attribute name starting with
'act'" (section 1.3) becomes a scan of the index's *key set* instead of
the whole database.
"""

from __future__ import annotations

import fnmatch
from typing import Iterable, Iterator

from ..core.graph import Edge, Graph
from ..core.labels import Label, LabelKind

__all__ = ["LabelIndex"]


class LabelIndex:
    """Inverted index ``label -> edges`` over the reachable part of a graph.

    Every lookup is accounted: a query that found at least one edge is a
    *hit*, one that found none a *miss*.  ``hits``/``misses`` are plain
    always-on integers (see docs/OBSERVABILITY.md); the profiled browse
    queries report per-query deltas of them.
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._by_label: dict[Label, list[Edge]] = {}
        self._edge_count = 0
        self.hits = 0
        self.misses = 0
        for node in graph.reachable():
            for edge in graph.edges_from(node):
                self._by_label.setdefault(edge.label, []).append(edge)
                self._edge_count += 1

    def _account(self, found: bool) -> None:
        if found:
            self.hits += 1
        else:
            self.misses += 1

    # -- incremental maintenance -------------------------------------------------

    def refresh(self, new_edges: "Iterable[Edge]") -> "LabelIndex":
        """Fold newly visible edges in (the MVCC store's delta path).

        The graph is append-only, so maintenance is pure insertion: each
        edge lands in its label's posting list.  The caller (the store)
        guarantees each visible edge is delivered exactly once.
        """
        for edge in new_edges:
            self._by_label.setdefault(edge.label, []).append(edge)
            self._edge_count += 1
        return self

    # -- lookups ---------------------------------------------------------------

    def edges_with_label(self, label: Label) -> tuple[Edge, ...]:
        """All edges carrying exactly ``label`` (empty if none)."""
        edges = self._by_label.get(label)
        self._account(edges is not None)
        return tuple(edges) if edges is not None else ()

    def sources_with_label(self, label: Label) -> set[int]:
        """Nodes that have at least one outgoing ``label`` edge."""
        edges = self._by_label.get(label)
        self._account(edges is not None)
        return {e.src for e in edges} if edges is not None else set()

    def targets_of_label(self, label: Label) -> set[int]:
        """Nodes reached by at least one ``label`` edge."""
        edges = self._by_label.get(label)
        self._account(edges is not None)
        return {e.dst for e in edges} if edges is not None else set()

    def labels(self, kind: LabelKind | None = None) -> Iterator[Label]:
        """All distinct labels, optionally restricted to one kind."""
        for label in self._by_label:
            if kind is None or label.kind is kind:
                yield label

    def symbols_matching(self, pattern: str) -> list[Label]:
        """Symbols whose name matches a ``%``-wildcard pattern.

        This answers section 1.3's "attribute name that starts with 'act'"
        directly from index keys -- no graph traversal at all.
        """
        glob = pattern.replace("%", "*")
        matched = sorted(
            (
                label
                for label in self._by_label
                if label.is_symbol and fnmatch.fnmatchcase(str(label.value), glob)
            ),
            key=Label.sort_key,
        )
        self._account(bool(matched))
        return matched

    def count(self, label: Label) -> int:
        """Number of edges carrying ``label`` (a basic optimizer statistic)."""
        return len(self._by_label.get(label, ()))

    @property
    def num_distinct_labels(self) -> int:
        return len(self._by_label)

    @property
    def num_edges(self) -> int:
        return self._edge_count

    def selectivity(self, label: Label) -> float:
        """Fraction of all edges carrying ``label`` (0.0 when absent)."""
        if not self._edge_count:
            return 0.0
        return self.count(label) / self._edge_count
