"""Path index: materialized label paths from the root.

The "path indices on labels" of section 4: for every label path of length
up to ``max_depth`` starting at the root, the index stores the set of nodes
the path reaches.  A fixed path expression (``Entry.Movie.Title``) then
answers in one dictionary lookup instead of a traversal, and a general path
expression can use the index's path vocabulary to prune its automaton
search.  The index is exactly the "access support relation" family of
structures contemporary OODB optimizers used, transplanted to the
schema-free model.

On cyclic graphs the path language is infinite, so the index is depth-
bounded; :attr:`PathIndex.max_depth` records the bound and lookups longer
than it fall back to ``None`` ("not covered"), never to a wrong answer.

The index snapshots the graph at construction and records the graph's
``version``; if the graph mutates afterwards, every lookup raises
:class:`StaleIndexError` instead of silently answering for the old graph
(a path index is a *positional* structure -- after an ``add_edge`` its
target sets are simply wrong, unlike the label/value/text indexes whose
staleness is merely incompleteness).  :class:`~repro.index.GraphIndexes`
catches the mismatch and rebuilds transparently; direct holders call
:meth:`PathIndex.is_stale` / rebuild themselves.
"""

from __future__ import annotations

from collections import deque

from ..core.graph import Graph
from ..core.labels import Label

__all__ = ["PathIndex", "StaleIndexError"]


class StaleIndexError(RuntimeError):
    """The indexed graph mutated after the index was built.

    Raised by :meth:`PathIndex.lookup` (and friends) when the graph's
    ``version`` no longer matches the one recorded at build time.  The
    caller must rebuild the index (or go through
    :class:`~repro.index.GraphIndexes`, which rebuilds automatically).
    """


class PathIndex:
    """Map ``(label, label, ...) -> frozenset of nodes`` up to a depth bound.

    Lookup accounting follows cache semantics: a *hit* is any path the
    index covers (even one reaching nothing -- that is an exact empty
    answer); a *miss* is a path beyond ``max_depth``, where the caller
    must fall back to traversal.
    """

    def __init__(self, graph: Graph, max_depth: int = 4) -> None:
        if max_depth < 0:
            raise ValueError("max_depth must be non-negative")
        self._graph = graph
        self._built_version = getattr(graph, "version", 0)
        self.max_depth = max_depth
        self.hits = 0
        self.misses = 0
        self._paths: dict[tuple[Label, ...], set[int]] = {(): {graph.root}}
        # inverted map node -> indexed paths reaching it; this is what
        # makes refresh() proportional to the delta's consequences
        self._node_paths: dict[int, set[tuple[Label, ...]]] = {graph.root: {()}}
        frontier: deque[tuple[tuple[Label, ...], int]] = deque([((), graph.root)])
        # BFS over (path, node) pairs; paths are truncated at max_depth.
        seen: set[tuple[tuple[Label, ...], int]] = {((), graph.root)}
        while frontier:
            path, node = frontier.popleft()
            if len(path) >= max_depth:
                continue
            for edge in graph.edges_from(node):
                extended = path + (edge.label,)
                self._paths.setdefault(extended, set()).add(edge.dst)
                self._node_paths.setdefault(edge.dst, set()).add(extended)
                state = (extended, edge.dst)
                if state not in seen:
                    seen.add(state)
                    frontier.append(state)

    # -- incremental maintenance -------------------------------------------------

    def refresh(self, new_edges) -> "PathIndex":
        """Fold newly visible edges in; the StaleIndexError-free path.

        For every new edge ``src --l--> dst``, each indexed path already
        reaching ``src`` extends through the edge; the worklist then
        closes over the consequences (paths newly reaching a node open
        that node's *entire* out-neighbourhood at the longer depth, and
        the graph may be cyclic).  The closure is a BFS over newly true
        ``(path, node)`` facts, so each fact is processed once no matter
        how the deltas arrive -- property-tested equal to a cold
        rebuild.  Afterwards the index is fresh: ``is_stale()`` is false
        and lookups serve without rebuilding.
        """
        work: deque[tuple[tuple[Label, ...], int]] = deque()
        for edge in new_edges:
            for path in list(self._node_paths.get(edge.src, ())):
                if len(path) < self.max_depth:
                    self._extend(path, edge.label, edge.dst, work)
        graph = self._graph
        while work:
            path, node = work.popleft()
            if len(path) >= self.max_depth:
                continue
            for edge in graph.edges_from(node):
                self._extend(path, edge.label, edge.dst, work)
        self._built_version = getattr(graph, "version", 0)
        return self

    def _extend(
        self,
        path: tuple[Label, ...],
        label: Label,
        dst: int,
        work: "deque[tuple[tuple[Label, ...], int]]",
    ) -> None:
        extended = path + (label,)
        targets = self._paths.setdefault(extended, set())
        if dst not in targets:
            targets.add(dst)
            self._node_paths.setdefault(dst, set()).add(extended)
            work.append((extended, dst))

    def is_stale(self) -> bool:
        """True iff the source graph mutated since the index was built."""
        return getattr(self._graph, "version", 0) != self._built_version

    def _check_fresh(self) -> None:
        if self.is_stale():
            raise StaleIndexError(
                "path index is stale: the graph mutated after the index "
                f"was built (version {self._built_version} -> "
                f"{getattr(self._graph, 'version', 0)}); rebuild it or use "
                "GraphIndexes, which rebuilds automatically"
            )

    def lookup(self, path: tuple[Label, ...]) -> frozenset[int] | None:
        """Nodes reached by ``path`` from the root.

        Returns ``None`` (not the empty set) when the path is longer than
        the index covers; the caller must fall back to traversal.  An
        in-bound path that reaches nothing returns ``frozenset()``.
        Raises :class:`StaleIndexError` when the graph has mutated since
        the index was built.
        """
        self._check_fresh()
        if len(path) > self.max_depth:
            self.misses += 1
            return None
        self.hits += 1
        return frozenset(self._paths.get(path, ()))

    def covers(self, path: tuple[Label, ...]) -> bool:
        self._check_fresh()
        return len(path) <= self.max_depth

    def path_vocabulary(self) -> list[tuple[Label, ...]]:
        """Every indexed label path, shortest first (DataGuide-flavoured)."""
        return sorted(self._paths, key=lambda p: (len(p), [l.sort_key() for l in p]))

    @property
    def num_paths(self) -> int:
        return len(self._paths)

    def paths_through_label(self, label: Label) -> list[tuple[Label, ...]]:
        """All indexed paths that contain ``label`` somewhere."""
        return [p for p in self._paths if label in p]
