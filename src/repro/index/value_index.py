"""Value index: range and prefix access to base-data labels.

Supports the browsing queries of section 1.3 that no schema-first language
can answer generically:

* "Where in the database is the string 'Casablanca' to be found?"
  -- exact string lookup;
* "Are there integers in the database greater than 2^16?"
  -- numeric range scan.

Numbers (ints and reals together, as a total order) and strings are kept in
sorted arrays with ``bisect`` access, so range/prefix queries cost
``O(log n + answer)``; exact lookups use a hash map.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator

from ..core.graph import Edge, Graph
from ..core.labels import Label, LabelKind

__all__ = ["ValueIndex"]


class ValueIndex:
    """Sorted + hashed access to every base-data label in a graph.

    Lookups are hit/miss accounted (hit = at least one edge answered);
    the counts feed the observability layer's per-query profiles.
    """

    def __init__(self, graph: Graph) -> None:
        self.hits = 0
        self.misses = 0
        self._exact: dict[Label, list[Edge]] = {}
        numbers: list[tuple[float, Edge]] = []
        strings: list[tuple[str, Edge]] = []
        for node in graph.reachable():
            for edge in graph.edges_from(node):
                label = edge.label
                if label.is_symbol:
                    continue
                self._exact.setdefault(label, []).append(edge)
                if label.kind in (LabelKind.INT, LabelKind.REAL):
                    numbers.append((float(label.value), edge))
                elif label.kind is LabelKind.STRING:
                    strings.append((str(label.value), edge))
        numbers.sort(key=lambda pair: pair[0])
        strings.sort(key=lambda pair: pair[0])
        self._number_keys = [k for k, _ in numbers]
        self._number_edges = [e for _, e in numbers]
        self._string_keys = [k for k, _ in strings]
        self._string_edges = [e for _, e in strings]

    def _account(self, found: bool) -> None:
        if found:
            self.hits += 1
        else:
            self.misses += 1

    # -- incremental maintenance -------------------------------------------------

    def refresh(self, new_edges: "Iterable[Edge]") -> "ValueIndex":
        """Fold newly visible edges in, keeping the sorted arrays sorted.

        Each data edge costs one hash insert plus one ``insort`` into
        its kind's array -- proportional to the delta, not the database.
        """
        for edge in new_edges:
            label = edge.label
            if label.is_symbol:
                continue
            self._exact.setdefault(label, []).append(edge)
            if label.kind in (LabelKind.INT, LabelKind.REAL):
                key = float(label.value)
                at = bisect.bisect_right(self._number_keys, key)
                self._number_keys.insert(at, key)
                self._number_edges.insert(at, edge)
            elif label.kind is LabelKind.STRING:
                key = str(label.value)
                at = bisect.bisect_right(self._string_keys, key)
                self._string_keys.insert(at, key)
                self._string_edges.insert(at, edge)
        return self

    # -- exact ----------------------------------------------------------------

    def find_exact(self, label: Label) -> tuple[Edge, ...]:
        """All edges whose data label equals ``label`` exactly."""
        edges = self._exact.get(label)
        self._account(edges is not None)
        return tuple(edges) if edges is not None else ()

    # -- numeric ranges ----------------------------------------------------------

    def numbers_greater_than(self, bound: float, strict: bool = True) -> Iterator[Edge]:
        """Edges whose numeric label exceeds ``bound`` (the 2^16 query)."""
        if strict:
            lo = bisect.bisect_right(self._number_keys, bound)
        else:
            lo = bisect.bisect_left(self._number_keys, bound)
        self._account(lo < len(self._number_keys))
        yield from self._number_edges[lo:]

    def numbers_in_range(self, low: float, high: float) -> Iterator[Edge]:
        """Edges with ``low <= value <= high``."""
        lo = bisect.bisect_left(self._number_keys, low)
        hi = bisect.bisect_right(self._number_keys, high)
        self._account(lo < hi)
        yield from self._number_edges[lo:hi]

    # -- string prefixes -----------------------------------------------------------

    def strings_with_prefix(self, prefix: str) -> Iterator[Edge]:
        """Edges whose string label starts with ``prefix``."""
        lo = bisect.bisect_left(self._string_keys, prefix)
        hi = bisect.bisect_left(self._string_keys, prefix + "￿")
        self._account(lo < hi)
        yield from self._string_edges[lo:hi]

    def strings_in_range(self, low: str, high: str) -> Iterator[Edge]:
        """Edges with ``low <= value <= high`` lexicographically."""
        lo = bisect.bisect_left(self._string_keys, low)
        hi = bisect.bisect_right(self._string_keys, high)
        self._account(lo < hi)
        yield from self._string_edges[lo:hi]

    # -- statistics --------------------------------------------------------------

    @property
    def num_numbers(self) -> int:
        return len(self._number_keys)

    @property
    def num_strings(self) -> int:
        return len(self._string_keys)
