"""Text index: word-level inverted index over string data.

Section 1.1 notes that "most web queries exploit information retrieval
techniques to retrieve individual pages from their contents"; section 4
lists "text indices ... on strings" among the useful physical structures.
This index tokenizes every string data label into lowercase words and maps
each word to the edges containing it, giving the IR-style *contains*
queries that complement the structural ones.
"""

from __future__ import annotations

import re
from typing import Iterable

from ..core.graph import Edge, Graph

__all__ = ["TextIndex", "tokenize"]

_WORD = re.compile(r"[A-Za-z0-9']+")


def tokenize(text: str) -> list[str]:
    """Split a string into lowercase word tokens."""
    return [w.lower() for w in _WORD.findall(text)]


class TextIndex:
    """Inverted index ``word -> edges whose string label contains it``.

    Word lookups are hit/miss accounted (hit = the word has postings);
    the compound AND/OR queries account once per word they probe.
    """

    def __init__(self, graph: Graph) -> None:
        self.hits = 0
        self.misses = 0
        self._postings: dict[str, list[Edge]] = {}
        for node in graph.reachable():
            for edge in graph.edges_from(node):
                if not edge.label.is_string:
                    continue
                seen: set[str] = set()
                for word in tokenize(str(edge.label.value)):
                    if word not in seen:
                        seen.add(word)
                        self._postings.setdefault(word, []).append(edge)

    def refresh(self, new_edges: "Iterable[Edge]") -> "TextIndex":
        """Fold newly visible edges into the postings (MVCC delta path)."""
        for edge in new_edges:
            if not edge.label.is_string:
                continue
            seen: set[str] = set()
            for word in tokenize(str(edge.label.value)):
                if word not in seen:
                    seen.add(word)
                    self._postings.setdefault(word, []).append(edge)
        return self

    def containing_word(self, word: str) -> tuple[Edge, ...]:
        """All string edges containing ``word`` (case-insensitive)."""
        postings = self._postings.get(word.lower())
        if postings is not None:
            self.hits += 1
            return tuple(postings)
        self.misses += 1
        return ()

    def containing_all(self, words: Iterable[str]) -> list[Edge]:
        """Edges whose string contains *every* given word (AND query)."""
        postings = [set(self.containing_word(w)) for w in words]
        if not postings:
            return []
        hit = set.intersection(*postings)
        return sorted(hit, key=lambda e: (e.src, e.dst))

    def containing_any(self, words: Iterable[str]) -> list[Edge]:
        """Edges whose string contains *some* given word (OR query)."""
        hit: set[Edge] = set()
        for w in words:
            hit.update(self.containing_word(w))
        return sorted(hit, key=lambda e: (e.src, e.dst))

    @property
    def vocabulary(self) -> list[str]:
        return sorted(self._postings)

    def document_frequency(self, word: str) -> int:
        return len(self._postings.get(word.lower(), ()))
