"""Schema-free browsing (section 1.3 of the paper)."""

from .search import (
    Finding,
    find_attribute_names,
    find_attribute_names_partial,
    find_attribute_names_profiled,
    find_integers_greater_than,
    find_integers_greater_than_partial,
    find_integers_greater_than_profiled,
    find_value,
    find_value_partial,
    find_value_profiled,
    where_is,
)

__all__ = [
    "Finding",
    "find_value",
    "find_value_partial",
    "find_value_profiled",
    "find_integers_greater_than",
    "find_integers_greater_than_partial",
    "find_integers_greater_than_profiled",
    "find_attribute_names",
    "find_attribute_names_partial",
    "find_attribute_names_profiled",
    "where_is",
]
