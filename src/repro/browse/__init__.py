"""Schema-free browsing (section 1.3 of the paper)."""

from .search import (
    Finding,
    find_attribute_names,
    find_integers_greater_than,
    find_value,
    where_is,
)

__all__ = [
    "Finding",
    "find_value",
    "find_integers_greater_than",
    "find_attribute_names",
    "where_is",
]
