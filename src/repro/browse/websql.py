"""A WebSQL-flavoured dialect for web-shaped graphs (section 3, [29]).

The paper lists WebSQL (Mendelzon-Mihaila-Milo) among the SQL-like
languages, "with a number of constructs specific to web queries".  This
module provides the recognizable core over the synthetic web graphs of
:mod:`repro.datasets.webgraph`:

    SELECT d.url, d.title
    FROM Document d SUCH THAT "link*.link"
    WHERE d.title CONTAINS "database"

* the ``SUCH THAT`` path regex selects documents by link structure
  (evaluated with the shared RPQ product, so cycles are fine);
* attributes are the scalar children of a document node;
* ``CONTAINS`` is the IR-style word test of
  :mod:`repro.index.text_index`, the paper's nod to information
  retrieval.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..automata.plan_cache import DEFAULT_PLAN_CACHE
from ..automata.product import rpq_nodes
from ..core.graph import Graph
from ..index.text_index import tokenize

__all__ = ["websql", "WebSqlError", "WebSqlQuery", "parse_websql"]


class WebSqlError(ValueError):
    """Raised on malformed WebSQL text."""


@dataclass(frozen=True)
class WebSqlQuery:
    attributes: tuple[str, ...]
    alias: str
    path: str
    contains_attr: "str | None" = None
    contains_word: "str | None" = None


def parse_websql(text: str) -> WebSqlQuery:
    """Parse the dialect's fixed shape (keywords are case-insensitive)."""
    tokens = text.replace(",", " , ").split()
    lowered = [t.lower() for t in tokens]

    def find(word: str) -> int:
        try:
            return lowered.index(word)
        except ValueError:
            raise WebSqlError(f"missing keyword {word.upper()!r}") from None

    sel, frm = find("select"), find("from")
    attrs = []
    alias_dot = None
    for token in tokens[sel + 1 : frm]:
        if token == ",":
            continue
        if "." not in token:
            raise WebSqlError(f"projection {token!r} must be alias.attribute")
        alias, attr = token.split(".", 1)
        if alias_dot is None:
            alias_dot = alias
        elif alias != alias_dot:
            raise WebSqlError("a single document alias is supported")
        attrs.append(attr)
    if not attrs:
        raise WebSqlError("empty projection")
    if lowered[frm + 1] != "document":
        raise WebSqlError("FROM must name the Document collection")
    alias = tokens[frm + 2]
    if lowered[frm + 3 : frm + 5] != ["such", "that"]:
        raise WebSqlError("expected SUCH THAT after the alias")
    path_token = tokens[frm + 5]
    if not (path_token.startswith('"') and path_token.endswith('"')):
        raise WebSqlError("the SUCH THAT path must be double-quoted")
    path = path_token[1:-1]
    contains_attr = contains_word = None
    if "where" in lowered:
        wh = find("where")
        operand = tokens[wh + 1]
        if lowered[wh + 2] != "contains":
            raise WebSqlError("only CONTAINS predicates are supported")
        word_token = tokens[wh + 3]
        if "." not in operand:
            raise WebSqlError("WHERE operand must be alias.attribute")
        _, contains_attr = operand.split(".", 1)
        contains_word = word_token.strip('"')
    return WebSqlQuery(tuple(attrs), alias, path, contains_attr, contains_word)


def websql(text: str, web: Graph) -> list[dict[str, list[object]]]:
    """Run a WebSQL query; one result dict per matched document."""
    query = parse_websql(text)
    results = []
    for doc in sorted(rpq_nodes(web, query.path, plan_cache=DEFAULT_PLAN_CACHE)):
        record: dict[str, list[object]] = {}
        for edge in web.edges_from(doc):
            if not edge.label.is_symbol:
                continue
            name = str(edge.label.value)
            for inner in web.edges_from(edge.dst):
                if inner.label.is_base:
                    record.setdefault(name, []).append(inner.label.value)
        if query.contains_attr is not None:
            haystack = " ".join(
                str(v) for v in record.get(query.contains_attr, ())
            )
            if query.contains_word.lower() not in tokenize(haystack):
                continue
        results.append({a: record.get(a, []) for a in query.attributes})
    return results
