"""Schema-free browsing queries (section 1.3).

The tutorial motivates semistructured query languages with three questions
that "cannot be answered in any generic fashion by standard relational or
object-oriented query languages":

* Where in the database is the string ``"Casablanca"`` to be found?
* Are there integers in the database greater than 2^16?
* What objects in the database have an attribute name that starts with
  ``"act"``?

Each query has a *scan* implementation (single pass over the reachable
graph -- always available) and an *indexed* implementation driven by
:class:`~repro.index.GraphIndexes`; experiment E1 measures the gap.  All
three return :class:`Finding` records that include a shortest label path
from the root, because "where is it" is only answered by a path the user
can follow.

Browsing is a *scan*, so over an :class:`~repro.storage.external.
ExternalGraph` it materializes every external region it walks into.  When
the wrapper runs in partial mode, regions whose fetch ultimately failed
contribute no edges, the scan proceeds over the rest, and the
``*_partial`` variants attach the graph's :class:`~repro.resilience.
Completeness` report so callers can tell an exact answer from a lower
bound.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass

from ..core.frozen import FrozenGraph
from ..core.graph import Edge, Graph
from ..core.labels import Label, string
from ..index import GraphIndexes
from ..obs import QueryProfile
from ..resilience import PartialResult, completeness_of

__all__ = [
    "Finding",
    "find_value",
    "find_value_partial",
    "find_value_profiled",
    "find_integers_greater_than",
    "find_integers_greater_than_partial",
    "find_integers_greater_than_profiled",
    "find_attribute_names",
    "find_attribute_names_partial",
    "find_attribute_names_profiled",
    "where_is",
]


@dataclass(frozen=True)
class Finding:
    """One browsing hit: the edge that matched and how to reach it."""

    edge: Edge
    path: tuple[Label, ...]

    def __str__(self) -> str:
        spelled = ".".join(str(lab) for lab in self.path + (self.edge.label,))
        return spelled or str(self.edge.label)


def _shortest_paths_to_nodes(graph: Graph, targets: set[int]) -> dict[int, tuple[Label, ...]]:
    """One BFS from the root giving a shortest label path to each target."""
    paths: dict[int, tuple[Label, ...]] = {graph.root: ()}
    pending = set(targets) - {graph.root}
    queue = [graph.root]
    while queue and pending:
        nxt: list[int] = []
        for node in queue:
            for edge in graph.edges_from(node):
                if edge.dst not in paths:
                    paths[edge.dst] = paths[node] + (edge.label,)
                    pending.discard(edge.dst)
                    nxt.append(edge.dst)
        queue = nxt
    return paths


def _frozen_label_scan(fg: FrozenGraph, keep) -> list[Edge]:
    """Scan a frozen graph by *distinct label*, then by edge.

    The predicate runs once per interned label instead of once per edge
    -- the win is largest for ``fnmatch``-style predicates on datasets
    whose label vocabulary is much smaller than their edge count.
    Matching edges come out in CSR (per-node insertion) order, filtered
    to the root-reachable region exactly like the plain scan.
    """
    keep_lids = {lid for lid, lab in enumerate(fg.labels_seq) if keep(lab)}
    if not keep_lids:
        return []
    reach = fg.reachable()
    srcs, targets, labels_seq = fg.srcs, fg.targets, fg.labels_seq
    return [
        Edge(srcs[i], labels_seq[lid], targets[i])
        for i, lid in enumerate(fg.label_ids)
        if lid in keep_lids and srcs[i] in reach
    ]


def _attach_paths(graph: Graph, edges: list[Edge]) -> list[Finding]:
    paths = _shortest_paths_to_nodes(graph, {e.src for e in edges})
    findings = [Finding(e, paths.get(e.src, ())) for e in edges]
    findings.sort(key=lambda f: (len(f.path), f.edge.src, f.edge.dst))
    return findings


def find_value(
    graph: Graph, value: "str | int | float | bool", indexes: GraphIndexes | None = None
) -> list[Finding]:
    """Where in the database is this value?  (First browsing query.)

    Matches base-data labels equal to ``value``; strings only match string
    labels (never symbols -- attribute names are a different question).
    """
    from ..core.labels import label_of

    target = string(value) if isinstance(value, str) else label_of(value)
    if indexes is not None:
        edges = list(indexes.value.find_exact(target))
    elif isinstance(graph, FrozenGraph):
        # the interned label space answers an exact-value probe directly
        reach = graph.reachable()
        edges = [e for e in graph.edges_with_label(target) if e.src in reach]
    else:
        edges = [
            e
            for n in graph.reachable()
            for e in graph.edges_from(n)
            if e.label == target
        ]
    return _attach_paths(graph, edges)


def find_integers_greater_than(
    graph: Graph, bound: int, indexes: GraphIndexes | None = None
) -> list[Finding]:
    """Are there integers in the database greater than ``bound``?

    (The paper's example bound is 2^16.)  Only *int* labels are reported;
    reals are a different kind in the tagged union.
    """
    if indexes is not None:
        edges = [
            e for e in indexes.value.numbers_greater_than(bound) if e.label.is_int
        ]
    elif isinstance(graph, FrozenGraph):
        edges = _frozen_label_scan(
            graph, lambda lab: lab.is_int and lab.value > bound
        )
    else:
        edges = [
            e
            for n in graph.reachable()
            for e in graph.edges_from(n)
            if e.label.is_int and e.label.value > bound
        ]
    return _attach_paths(graph, edges)


def find_attribute_names(
    graph: Graph, pattern: str, indexes: GraphIndexes | None = None
) -> list[Finding]:
    """What objects have an attribute name matching ``pattern``?

    ``pattern`` uses ``%`` wildcards; the paper's example is ``act%``.
    Returns one finding per matching *edge* (the object is the edge's
    source; its path locates it).
    """
    glob = pattern.replace("%", "*")
    if indexes is not None:
        labels = indexes.label.symbols_matching(pattern)
        edges = [e for lab in labels for e in indexes.label.edges_with_label(lab)]
    elif isinstance(graph, FrozenGraph):
        edges = _frozen_label_scan(
            graph,
            lambda lab: lab.is_symbol and fnmatch.fnmatchcase(str(lab.value), glob),
        )
    else:
        edges = [
            e
            for n in graph.reachable()
            for e in graph.edges_from(n)
            if e.label.is_symbol and fnmatch.fnmatchcase(str(e.label.value), glob)
        ]
    return _attach_paths(graph, edges)


def where_is(
    graph: Graph,
    value: "str | int | float | bool",
    indexes: GraphIndexes | None = None,
) -> list[str]:
    """Human-oriented wrapper: dotted path strings for :func:`find_value`.

    ``indexes`` routes the probe through the value index (the planner's
    browse delegation passes its own :class:`~repro.index.GraphIndexes`).
    """
    return [str(f) for f in find_value(graph, value, indexes)]


# -- partial-result variants (the resilience contract) -------------------------


def _scan_profiled(graph: Graph, keep, profile: QueryProfile) -> list[Edge]:
    """One accounted pass over the reachable graph.

    The loop mirrors the plain scans' comprehension, with two integer
    adds per *node* (not per edge) so the instrumented scan stays inside
    the overhead budget of ``benchmarks/bench_obs_overhead.py``.
    """
    nodes = 0
    scanned = 0
    edges: list[Edge] = []
    append = edges.append
    edges_from = graph.edges_from
    for n in graph.reachable():
        nodes += 1
        out = edges_from(n)
        scanned += len(out)
        for e in out:
            if keep(e.label):
                append(e)
    profile.nodes_visited += nodes
    profile.edges_expanded += scanned
    return edges


def _indexed_profiled(indexes: GraphIndexes, run, profile: QueryProfile) -> list[Edge]:
    """Run an index-backed lookup, capturing the hit/miss delta it caused."""
    hits_before = indexes.total_hits
    misses_before = indexes.total_misses
    edges = run()
    profile.index_hits += indexes.total_hits - hits_before
    profile.index_misses += indexes.total_misses - misses_before
    return edges


def find_value_profiled(
    graph: Graph, value: "str | int | float | bool", indexes: GraphIndexes | None = None
) -> tuple[list[Finding], QueryProfile]:
    """:func:`find_value` plus a :class:`~repro.obs.QueryProfile`.

    The scan path reports nodes visited and edges scanned; the indexed
    path reports the index hit/miss delta the lookup caused instead.
    """
    from ..core.labels import label_of

    target = string(value) if isinstance(value, str) else label_of(value)
    profile = QueryProfile(engine="browse", query=f"find_value({value!r})")
    if indexes is not None:
        edges = _indexed_profiled(
            indexes, lambda: list(indexes.value.find_exact(target)), profile
        )
    else:
        edges = _scan_profiled(graph, target.__eq__, profile)
    findings = _attach_paths(graph, edges)
    profile.results = len(findings)
    return findings, profile


def find_integers_greater_than_profiled(
    graph: Graph, bound: int, indexes: GraphIndexes | None = None
) -> tuple[list[Finding], QueryProfile]:
    """:func:`find_integers_greater_than` plus its query profile."""
    profile = QueryProfile(engine="browse", query=f"ints_greater_than({bound})")
    if indexes is not None:
        edges = _indexed_profiled(
            indexes,
            lambda: [
                e for e in indexes.value.numbers_greater_than(bound) if e.label.is_int
            ],
            profile,
        )
    else:
        edges = _scan_profiled(
            graph, lambda lab: lab.is_int and lab.value > bound, profile
        )
    findings = _attach_paths(graph, edges)
    profile.results = len(findings)
    return findings, profile


def find_attribute_names_profiled(
    graph: Graph, pattern: str, indexes: GraphIndexes | None = None
) -> tuple[list[Finding], QueryProfile]:
    """:func:`find_attribute_names` plus its query profile."""
    glob = pattern.replace("%", "*")
    profile = QueryProfile(engine="browse", query=f"attribute_names({pattern!r})")
    if indexes is not None:

        def run() -> list[Edge]:
            labels = indexes.label.symbols_matching(pattern)
            return [e for lab in labels for e in indexes.label.edges_with_label(lab)]

        edges = _indexed_profiled(indexes, run, profile)
    else:
        edges = _scan_profiled(
            graph,
            lambda lab: lab.is_symbol and fnmatch.fnmatchcase(str(lab.value), glob),
            profile,
        )
    findings = _attach_paths(graph, edges)
    profile.results = len(findings)
    return findings, profile


def find_value_partial(
    graph: Graph, value: "str | int | float | bool", indexes: GraphIndexes | None = None
) -> "PartialResult[list[Finding]]":
    """:func:`find_value` plus the graph's completeness report.

    Over a degradable graph the findings are a sound lower bound: lost
    regions can only hide hits.
    """
    return PartialResult(find_value(graph, value, indexes), completeness_of(graph))


def find_integers_greater_than_partial(
    graph: Graph, bound: int, indexes: GraphIndexes | None = None
) -> "PartialResult[list[Finding]]":
    """:func:`find_integers_greater_than` plus the completeness report."""
    return PartialResult(
        find_integers_greater_than(graph, bound, indexes), completeness_of(graph)
    )


def find_attribute_names_partial(
    graph: Graph, pattern: str, indexes: GraphIndexes | None = None
) -> "PartialResult[list[Finding]]":
    """:func:`find_attribute_names` plus the completeness report."""
    return PartialResult(
        find_attribute_names(graph, pattern, indexes), completeness_of(graph)
    )
