"""Translating a UnQL fragment onto the relational substrate (section 4).

"In [19] a translation is specified for a fragment of UnQL into an
underlying relational structure" (Fernandez-Popa-Suciu).  This module
implements that idea end to end: the binding phase of a UnQL query is
compiled into relational algebra over the ``(src, kind, label, dst)`` edge
relation of :mod:`repro.relational.encode`, with ``#`` steps compiled to a
reflexive-transitive closure computed by :func:`~repro.relational.algebra.
fixpoint`.

The supported fragment (anything outside raises :class:`TranslationError`):

* pattern edges that are concatenations of exact labels, ``_`` and ``#``
  (i.e. the path expressions with no alternation/negation/starred bodies);
* label-variable edges;
* tree-variable, literal, and nested-pattern targets;
* conditions on *label* variables (comparisons and ``like``).

The deliverable is a relation whose columns are the query's variables; the
tests and experiment E8 check that it coincides with the native
evaluator's :func:`~repro.unql.evaluator.query_bindings` and compare the
costs of the two routes.
"""

from __future__ import annotations

import fnmatch
import itertools

from ..automata.regex import AtomRE, ConcatRE, PathRegex, StarRE
from ..core.graph import Graph
from ..core.labels import Label
from ..unql.ast import (
    Comparison,
    LabelVarEdge,
    LikeCondition,
    LiteralTarget,
    NestedPattern,
    Pattern,
    Query,
    RegexEdge,
    TreeVar,
    TypeCheck,
)
from .algebra import fixpoint, natural_join, project, rename, select, union
from .encode import graph_to_edge_relation
from .relation import Relation

__all__ = ["TranslationError", "translate_bindings"]


class TranslationError(ValueError):
    """Raised when a query falls outside the translatable fragment."""


# -- path decomposition -------------------------------------------------------


def _steps_of(regex: PathRegex) -> list[object]:
    """Flatten a regex into a step list: Label, "any", or "closure"."""
    if isinstance(regex, ConcatRE):
        return _steps_of(regex.left) + _steps_of(regex.right)
    if isinstance(regex, AtomRE):
        p = regex.predicate
        if p.is_exact:
            return [p.exact_label]
        if p.kind == "any":
            return ["any"]
        raise TranslationError(f"predicate {p} is outside the fragment")
    if isinstance(regex, StarRE) and isinstance(regex.inner, AtomRE):
        if regex.inner.predicate.kind == "any":
            return ["closure"]
        raise TranslationError("only '#' (any-star) closures are translatable")
    raise TranslationError(f"regex {regex} is outside the fragment")


# -- the translation ------------------------------------------------------------


class _Translator:
    def __init__(self, graph: Graph) -> None:
        self.edges, self.root = graph_to_edge_relation(graph)
        self.nodes = sorted(graph.reachable())
        self._closure: Relation | None = None
        self._fresh = itertools.count()

    def fresh(self, prefix: str) -> str:
        return f"@{prefix}{next(self._fresh)}"

    def closure(self) -> Relation:
        """Reflexive-transitive closure over all edges, (a, b) columns."""
        if self._closure is None:
            identity = Relation(("a", "b"), ((n, n) for n in self.nodes))
            hops = project(
                rename(self.edges, {"src": "a", "dst": "b"}), ("a", "b")
            )

            def step(reach: Relation) -> Relation:
                grown = natural_join(
                    reach, rename(hops, {"a": "b", "b": "@far"})
                )
                return rename(project(grown, ("a", "@far")), {"@far": "b"})

            self._closure = fixpoint(union(identity, hops), step)
        return self._closure

    def advance(self, rel: Relation, cur: str, step: object) -> tuple[Relation, str]:
        """One path step: rel has node column ``cur``; returns (rel', cur')."""
        nxt = self.fresh("n")
        if step == "closure":
            hop = rename(self.closure(), {"a": cur, "b": nxt})
            return natural_join(rel, hop), nxt
        if step == "any":
            hop = project(
                rename(self.edges, {"src": cur, "dst": nxt}), (cur, nxt)
            )
            return natural_join(rel, hop), nxt
        assert isinstance(step, Label)
        matching = select(
            self.edges,
            lambda row, lab=step: row["kind"] == lab.kind.value
            and row["label"] == lab.value,
        )
        hop = project(rename(matching, {"src": cur, "dst": nxt}), (cur, nxt))
        return natural_join(rel, hop), nxt

    def member(self, rel: Relation, anchor: str, member) -> Relation:
        """Extend ``rel`` with one pattern member anchored at column ``anchor``."""
        if isinstance(member.edge, LabelVarEdge):
            var = member.edge.var
            nxt = self.fresh("n")
            hop = project(
                rename(self.edges, {"src": anchor, "label": var, "dst": nxt}),
                (anchor, var, nxt),
            )
            rel = natural_join(rel, hop)
            cur = nxt
        elif isinstance(member.edge, RegexEdge):
            cur = anchor
            for step in _steps_of(member.edge.regex):
                rel, cur = self.advance(rel, cur, step)
        else:
            raise TranslationError(f"unknown edge spec {member.edge!r}")
        return self.target(rel, cur, member.target)

    def target(self, rel: Relation, cur: str, target) -> Relation:
        if isinstance(target, TreeVar):
            if target.var in rel.schema:
                # repeated variable: both occurrences must bind the same node
                filtered = select(
                    rel, lambda row, c=cur, v=target.var: row[c] == row[v]
                )
                return project(
                    filtered, tuple(a for a in filtered.schema if a != cur)
                )
            return rename(rel, {cur: target.var})
        if isinstance(target, LiteralTarget):
            lit = target.label
            encodes = select(
                self.edges,
                lambda row, lab=lit: row["kind"] == lab.kind.value
                and row["label"] == lab.value,
            )
            holder = project(rename(encodes, {"src": cur}), (cur,))
            joined = natural_join(rel, holder)
            return project(joined, tuple(a for a in joined.schema if a != cur))
        if isinstance(target, NestedPattern):
            rel = self.pattern(rel, cur, target.pattern)
            return project(rel, tuple(a for a in rel.schema if a != cur))
        raise TranslationError(f"unknown target {target!r}")

    def pattern(self, rel: Relation, anchor: str, pattern: Pattern) -> Relation:
        for member in pattern.members:
            rel = self.member(rel, anchor, member)
        return rel


def _apply_condition(rel: Relation, cond, label_vars: set[str]) -> Relation:
    if isinstance(cond, Comparison):
        for side, is_var in ((cond.left, cond.left_is_var), (cond.right, cond.right_is_var)):
            if is_var and side not in label_vars:
                raise TranslationError(
                    f"condition on tree variable \\{side} is outside the fragment"
                )

        def passes(row: dict) -> bool:
            left = row[cond.left] if cond.left_is_var else cond.left.value
            right = row[cond.right] if cond.right_is_var else cond.right.value
            numeric = isinstance(left, (int, float)) and isinstance(right, (int, float))
            same = type(left) is type(right)
            if cond.op == "=":
                return left == right if (numeric or same) else False
            if cond.op == "!=":
                return left != right if (numeric or same) else True
            if not (numeric or same):
                return False
            try:
                return {
                    "<": left < right,
                    "<=": left <= right,
                    ">": left > right,
                    ">=": left >= right,
                }[cond.op]
            except TypeError:
                return False

        return select(rel, passes)
    if isinstance(cond, LikeCondition):
        if cond.var not in label_vars:
            raise TranslationError(
                f"'like' on tree variable \\{cond.var} is outside the fragment"
            )
        glob = cond.pattern.replace("%", "*")
        return select(
            rel,
            lambda row: isinstance(row[cond.var], str)
            and fnmatch.fnmatchcase(row[cond.var], glob),
        )
    if isinstance(cond, TypeCheck):
        raise TranslationError("type checks are outside the translatable fragment")
    raise TranslationError(f"unknown condition {cond!r}")


def _label_vars_of(pattern: Pattern, acc: set[str]) -> None:
    for member in pattern.members:
        if isinstance(member.edge, LabelVarEdge):
            acc.add(member.edge.var)
        if isinstance(member.target, NestedPattern):
            _label_vars_of(member.target.pattern, acc)


def translate_bindings(query: Query, graph: Graph) -> Relation:
    """Compile and run the binding phase of a query on the edge relation.

    Returns a relation whose columns are the query's variables: tree
    variables hold graph node ids, label variables hold label *values*.
    Agrees with :func:`repro.unql.evaluator.query_bindings` on the
    fragment (property-tested; experiment E8 measures the cost gap).
    """
    translator = _Translator(graph)
    label_vars: set[str] = set()
    rel: Relation | None = None
    for binding in query.bindings:
        if binding.source_is_var:
            raise TranslationError("'in \\var' re-binding is outside the fragment")
        _label_vars_of(binding.pattern, label_vars)
        anchor = translator.fresh("n")
        base = Relation((anchor,), [(translator.root,)])
        matched = translator.pattern(base, anchor, binding.pattern)
        matched = project(
            matched, tuple(a for a in matched.schema if not a.startswith("@"))
        )
        rel = matched if rel is None else natural_join(rel, matched)
    if rel is None:
        raise TranslationError("query has no bindings to translate")
    for cond in query.conditions:
        rel = _apply_condition(rel, cond, label_vars)
    return project(rel, tuple(sorted(rel.schema)))
