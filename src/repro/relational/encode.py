"""Encodings between graphs and relations (sections 2 and 3).

Three encodings from the paper:

* **Graph as edge relation** -- "we can take the database as a large
  relation of type (node-id, label, node-id)".  The paper immediately
  lists the complication that labels are heterogeneous; we address it the
  two ways it suggests: one wide relation with an explicit *kind* column
  (:func:`graph_to_edge_relation`), or several typed relations, one per
  label kind (:func:`graph_to_typed_relations`).
* **Relational database as graph** (section 2: "it is straightforward to
  encode relational ... databases in this model"): each table becomes a
  subtree ``root -> <Table> -> tuple -> <attr> -> {value: {}}``
  (:func:`relational_to_graph`), invertible on its image by
  :func:`graph_to_relational`.  This encoding is the bridge experiment E4
  walks across to compare UnQL with the relational algebra.
"""

from __future__ import annotations

from typing import Mapping

from ..core.graph import Graph
from ..core.labels import Label, LabelKind, label_of, sym
from .relation import Relation, RelationError

__all__ = [
    "graph_to_edge_relation",
    "graph_to_typed_relations",
    "edge_relation_to_graph",
    "relational_to_graph",
    "graph_to_relational",
    "EDGE_SCHEMA",
]

#: Schema of the wide edge relation.
EDGE_SCHEMA = ("src", "kind", "label", "dst")


def graph_to_edge_relation(graph: Graph) -> tuple[Relation, int]:
    """The (node-id, label, node-id) encoding, with a kind discriminator.

    Returns the relation and the root node id (complication 4 of the
    paper's list: queries must know the root to restrict themselves to
    forward-reachable data).
    """
    rows = []
    for node in graph.reachable():
        for edge in graph.edges_from(node):
            rows.append((edge.src, edge.label.kind.value, edge.label.value, edge.dst))
    return Relation(EDGE_SCHEMA, rows), graph.root


def graph_to_typed_relations(graph: Graph) -> tuple[dict[str, Relation], int]:
    """One ``(src, label, dst)`` relation per label kind.

    "Our labels are drawn from a heterogeneous collection of types, so it
    may be appropriate to use more than one relation."  Keys are the kind
    names (``symbol``, ``int``...); kinds that never occur are absent.
    """
    buckets: dict[str, list[tuple]] = {}
    for node in graph.reachable():
        for edge in graph.edges_from(node):
            buckets.setdefault(edge.label.kind.value, []).append(
                (edge.src, edge.label.value, edge.dst)
            )
    relations = {
        kind: Relation(("src", "label", "dst"), rows) for kind, rows in buckets.items()
    }
    return relations, graph.root


def edge_relation_to_graph(rel: Relation, root: int) -> Graph:
    """Rebuild a graph from the wide edge relation (inverse of the encoding).

    Node ids in the relation are preserved only up to renaming; the result
    is isomorphic (hence bisimilar) to the original reachable graph.
    """
    if rel.schema != EDGE_SCHEMA:
        raise RelationError(f"expected schema {EDGE_SCHEMA}, got {rel.schema}")
    g = Graph()
    mapping: dict[int, int] = {}

    def node_for(old: int) -> int:
        if old not in mapping:
            mapping[old] = g.new_node()
        return mapping[old]

    root_node = node_for(root)
    g.set_root(root_node)
    for src, kind, value, dst in sorted(rel.rows, key=repr):
        label = Label(LabelKind(kind), value)
        g.add_edge(node_for(src), label, node_for(dst))
    return g


def relational_to_graph(catalog: Mapping[str, Relation]) -> Graph:
    """Encode a whole relational database as one rooted graph.

    Layout::

        root --<Table>--> table-node --tuple--> tuple-node --<attr>--> {v: {}}

    The ``tuple`` edges carry the same symbol for every row: a relation is
    a *set* of tuples and the model's edge sets capture that directly.
    """
    g = Graph()
    root = g.new_node()
    g.set_root(root)
    for table in sorted(catalog):
        rel = catalog[table]
        table_node = g.new_node()
        g.add_edge(root, sym(table), table_node)
        for row in sorted(rel.rows, key=repr):
            tuple_node = g.new_node()
            g.add_edge(table_node, sym("tuple"), tuple_node)
            for attr, value in zip(rel.schema, row):
                value_node = g.new_node()
                leaf = g.new_node()
                g.add_edge(tuple_node, sym(attr), value_node)
                g.add_edge(value_node, label_of(value), leaf)
    return g


def graph_to_relational(graph: Graph) -> dict[str, Relation]:
    """Decode :func:`relational_to_graph`'s image back into a catalog.

    The schema of each table is the union of attribute names seen in its
    tuples (sorted); missing attributes raise, because relational data is
    exactly the structured case where every tuple is total -- a graph that
    fails this is *semistructured* and has no faithful relational form.
    """
    catalog: dict[str, Relation] = {}
    for table_edge in graph.edges_from(graph.root):
        if not table_edge.label.is_symbol:
            raise RelationError("table edges must be symbols")
        table = str(table_edge.label.value)
        tuple_nodes = [
            e.dst for e in graph.edges_from(table_edge.dst) if e.label == sym("tuple")
        ]
        attr_names: set[str] = set()
        raw_rows: list[dict[str, object]] = []
        for tnode in tuple_nodes:
            row: dict[str, object] = {}
            for attr_edge in graph.edges_from(tnode):
                if not attr_edge.label.is_symbol:
                    raise RelationError("attribute edges must be symbols")
                value_edges = graph.edges_from(attr_edge.dst)
                if len(value_edges) != 1 or not value_edges[0].label.is_base:
                    raise RelationError(
                        f"attribute {attr_edge.label!r} does not hold a single scalar"
                    )
                row[str(attr_edge.label.value)] = value_edges[0].label.value
            attr_names.update(row)
            raw_rows.append(row)
        schema = tuple(sorted(attr_names))
        for row in raw_rows:
            missing = set(schema) - set(row)
            if missing:
                raise RelationError(
                    f"tuple in table {table!r} is missing attributes {sorted(missing)}: "
                    "the data is semistructured, not relational"
                )
        catalog[table] = Relation(schema, (tuple(r[a] for a in schema) for r in raw_rows))
    return catalog
