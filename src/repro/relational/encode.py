"""Encodings between graphs and relations (sections 2 and 3).

Three encodings from the paper:

* **Graph as edge relation** -- "we can take the database as a large
  relation of type (node-id, label, node-id)".  The paper immediately
  lists the complication that labels are heterogeneous; we address it the
  two ways it suggests: one wide relation with an explicit *kind* column
  (:func:`graph_to_edge_relation`), or several typed relations, one per
  label kind (:func:`graph_to_typed_relations`).
* **Relational database as graph** (section 2: "it is straightforward to
  encode relational ... databases in this model"): each table becomes a
  subtree ``root -> <Table> -> tuple -> <attr> -> {value: {}}``
  (:func:`relational_to_graph`), invertible on its image by
  :func:`graph_to_relational`.  This encoding is the bridge experiment E4
  walks across to compare UnQL with the relational algebra.
* **OEM database as relations** -- the Lorel side of the same bridge:
  :func:`oem_to_relations` shreds an :class:`~repro.core.oem.OemDatabase`
  into ``edges`` / ``atoms`` / ``names`` relations and
  :func:`relations_to_oem` rebuilds it *identically* (same oids, same
  child order, cycles and shared subobjects included).  This exact
  encoding, loaded into sqlite, is what :mod:`repro.sqlbackend` compiles
  Lorel queries against -- the round-trip property suite is the proof
  that nothing is lost in translation.

Row iteration everywhere below is in sorted node order, so the relations
-- and the canonical text of :func:`dump_relations` -- are byte-stable
across runs for equal inputs.
"""

from __future__ import annotations

from typing import Mapping

from ..core.graph import Graph
from ..core.labels import Label, LabelKind, label_of, sym
from ..core.oem import OemDatabase
from .relation import Relation, RelationError

__all__ = [
    "graph_to_edge_relation",
    "graph_to_typed_relations",
    "edge_relation_to_graph",
    "relational_to_graph",
    "graph_to_relational",
    "oem_to_relations",
    "relations_to_oem",
    "dump_relations",
    "EDGE_SCHEMA",
    "OEM_EDGE_SCHEMA",
    "OEM_ATOM_SCHEMA",
    "OEM_NAME_SCHEMA",
]

#: Schema of the wide edge relation.
EDGE_SCHEMA = ("src", "kind", "label", "dst")

#: Schemas of the OEM shredding.  ``pos`` is the child's index in its
#: parent's child list: relations are sets, and without it the encoding
#: would collapse duplicate ``(label, child)`` pairs and forget order --
#: both observable through OEM object identity.
OEM_EDGE_SCHEMA = ("src", "pos", "label", "dst")
OEM_ATOM_SCHEMA = ("oid", "kind", "value")
OEM_NAME_SCHEMA = ("name", "oid")


def graph_to_edge_relation(graph: Graph) -> tuple[Relation, int]:
    """The (node-id, label, node-id) encoding, with a kind discriminator.

    Returns the relation and the root node id (complication 4 of the
    paper's list: queries must know the root to restrict themselves to
    forward-reachable data).
    """
    rows = []
    for node in sorted(graph.reachable()):
        for edge in graph.edges_from(node):
            rows.append((edge.src, edge.label.kind.value, edge.label.value, edge.dst))
    return Relation(EDGE_SCHEMA, rows), graph.root


def graph_to_typed_relations(graph: Graph) -> tuple[dict[str, Relation], int]:
    """One ``(src, label, dst)`` relation per label kind.

    "Our labels are drawn from a heterogeneous collection of types, so it
    may be appropriate to use more than one relation."  Keys are the kind
    names (``symbol``, ``int``...); kinds that never occur are absent.
    """
    buckets: dict[str, list[tuple]] = {}
    for node in sorted(graph.reachable()):
        for edge in graph.edges_from(node):
            buckets.setdefault(edge.label.kind.value, []).append(
                (edge.src, edge.label.value, edge.dst)
            )
    relations = {
        kind: Relation(("src", "label", "dst"), rows) for kind, rows in buckets.items()
    }
    return relations, graph.root


def edge_relation_to_graph(rel: Relation, root: int) -> Graph:
    """Rebuild a graph from the wide edge relation (inverse of the encoding).

    Node ids in the relation are preserved only up to renaming; the result
    is isomorphic (hence bisimilar) to the original reachable graph.
    """
    if rel.schema != EDGE_SCHEMA:
        raise RelationError(f"expected schema {EDGE_SCHEMA}, got {rel.schema}")
    g = Graph()
    mapping: dict[int, int] = {}

    def node_for(old: int) -> int:
        if old not in mapping:
            mapping[old] = g.new_node()
        return mapping[old]

    root_node = node_for(root)
    g.set_root(root_node)
    for src, kind, value, dst in sorted(rel.rows, key=repr):
        label = Label(LabelKind(kind), value)
        g.add_edge(node_for(src), label, node_for(dst))
    return g


def relational_to_graph(catalog: Mapping[str, Relation]) -> Graph:
    """Encode a whole relational database as one rooted graph.

    Layout::

        root --<Table>--> table-node --tuple--> tuple-node --<attr>--> {v: {}}

    The ``tuple`` edges carry the same symbol for every row: a relation is
    a *set* of tuples and the model's edge sets capture that directly.
    """
    g = Graph()
    root = g.new_node()
    g.set_root(root)
    for table in sorted(catalog):
        rel = catalog[table]
        table_node = g.new_node()
        g.add_edge(root, sym(table), table_node)
        for row in sorted(rel.rows, key=repr):
            tuple_node = g.new_node()
            g.add_edge(table_node, sym("tuple"), tuple_node)
            for attr, value in zip(rel.schema, row):
                value_node = g.new_node()
                leaf = g.new_node()
                g.add_edge(tuple_node, sym(attr), value_node)
                g.add_edge(value_node, label_of(value), leaf)
    return g


def graph_to_relational(graph: Graph) -> dict[str, Relation]:
    """Decode :func:`relational_to_graph`'s image back into a catalog.

    The schema of each table is the union of attribute names seen in its
    tuples (sorted); missing attributes raise, because relational data is
    exactly the structured case where every tuple is total -- a graph that
    fails this is *semistructured* and has no faithful relational form.
    """
    catalog: dict[str, Relation] = {}
    for table_edge in graph.edges_from(graph.root):
        if not table_edge.label.is_symbol:
            raise RelationError("table edges must be symbols")
        table = str(table_edge.label.value)
        tuple_nodes = [
            e.dst for e in graph.edges_from(table_edge.dst) if e.label == sym("tuple")
        ]
        attr_names: set[str] = set()
        raw_rows: list[dict[str, object]] = []
        for tnode in tuple_nodes:
            row: dict[str, object] = {}
            for attr_edge in graph.edges_from(tnode):
                if not attr_edge.label.is_symbol:
                    raise RelationError("attribute edges must be symbols")
                value_edges = graph.edges_from(attr_edge.dst)
                if len(value_edges) != 1 or not value_edges[0].label.is_base:
                    raise RelationError(
                        f"attribute {attr_edge.label!r} does not hold a single scalar"
                    )
                row[str(attr_edge.label.value)] = value_edges[0].label.value
            attr_names.update(row)
            raw_rows.append(row)
        schema = tuple(sorted(attr_names))
        for row in raw_rows:
            missing = set(schema) - set(row)
            if missing:
                raise RelationError(
                    f"tuple in table {table!r} is missing attributes {sorted(missing)}: "
                    "the data is semistructured, not relational"
                )
        catalog[table] = Relation(schema, (tuple(r[a] for a in schema) for r in raw_rows))
    return catalog


# ---------------------------------------------------------------------------
# The OEM shredding: the encoding the SQL backend queries.


def _atom_kind(value: object) -> str:
    """The storage-class discriminator of an atomic value.

    ``bool`` is checked before ``int`` (Python bools *are* ints) so that
    ``True`` and ``1`` -- distinct OEM atoms under Lorel's coercions --
    stay distinct rows.
    """
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "real"
    return "string"


def _decode_atom(kind: str, value: object) -> object:
    """Inverse of :func:`_atom_kind` + storage: rebuild the Python atom."""
    if kind == "bool":
        return bool(value)
    if kind == "int":
        return int(value)  # type: ignore[arg-type]
    if kind == "real":
        return float(value)  # type: ignore[arg-type]
    return str(value)


def oem_to_relations(db: OemDatabase) -> dict[str, Relation]:
    """Shred an OEM database into ``edges`` / ``atoms`` / ``names``.

    Every object appears: atomic oids as ``atoms`` rows (with a kind
    discriminator so ``True``/``1`` and ``5``/``5.0`` survive), complex
    oids as the ``src`` of their ``edges`` rows -- and childless complex
    objects as an ``atoms`` row with kind ``complex`` and a ``None``
    value, so emptiness is not confused with atomicity on the way back.
    """
    edge_rows: list[tuple] = []
    atom_rows: list[tuple] = []
    for oid in sorted(db.oids()):
        obj = db.get(oid)
        if obj.is_atomic:
            atom_rows.append((oid, _atom_kind(obj.atom), obj.atom))
            continue
        if not obj.children:
            atom_rows.append((oid, "complex", None))
        for pos, (label, child) in enumerate(obj.children):
            edge_rows.append((oid, pos, label, child))
    name_rows = [(name, oid) for name, oid in sorted(db.names.items())]
    return {
        "edges": Relation(OEM_EDGE_SCHEMA, edge_rows),
        "atoms": Relation(OEM_ATOM_SCHEMA, atom_rows),
        "names": Relation(OEM_NAME_SCHEMA, name_rows),
    }


def relations_to_oem(catalog: Mapping[str, Relation]) -> OemDatabase:
    """Rebuild the OEM database :func:`oem_to_relations` shredded.

    The result is *identical*, not merely isomorphic: oids are preserved
    (OEM allocates them densely from 1, and the rebuild allocates in the
    same sorted order), child lists keep their recorded positions, and
    cycles/shared subobjects come back because children are attached by
    oid after every object exists.
    """
    edges = catalog["edges"]
    atoms = catalog["atoms"]
    names = catalog["names"]
    if edges.schema != OEM_EDGE_SCHEMA or atoms.schema != OEM_ATOM_SCHEMA:
        raise RelationError("catalog does not carry the OEM schemas")
    atom_of = {row[0]: (row[1], row[2]) for row in atoms.rows}
    children_of: dict[int, list[tuple[int, str, int]]] = {}
    atomic_oids = {row[0] for row in atoms.rows if row[1] != "complex"}
    complex_oids = {row[0] for row in atoms.rows if row[1] == "complex"}
    for src, pos, label, dst in edges.rows:
        children_of.setdefault(src, []).append((pos, label, dst))
        complex_oids.add(src)
    all_oids = sorted(
        atomic_oids | complex_oids | {dst for _, _, _, dst in edges.rows}
    )
    if all_oids != list(range(1, len(all_oids) + 1)):
        raise RelationError(
            "OEM relations must use the dense oid space 1..N the model allocates"
        )
    db = OemDatabase()
    for oid in all_oids:
        if oid in atomic_oids:
            kind, value = atom_of[oid]
            got = db.new_atomic(_decode_atom(kind, value))
        else:
            got = db.new_complex()
        assert got == oid  # dense allocation reproduces the ids
    for src in sorted(children_of):
        for _pos, label, dst in sorted(children_of[src]):
            db.add_child(src, label, dst)
    for name, oid in sorted(names.rows):
        db.set_name(str(name), oid)
    return db


def dump_relations(catalog: Mapping[str, Relation]) -> str:
    """A canonical, byte-stable text dump of a relation catalog.

    Tables sort by name, rows by ``repr`` (total over the heterogeneous
    value types); two equal catalogs always dump to the same bytes, so
    the round-trip suite can assert on text equality and humans can diff
    dumps like any golden file.
    """
    lines: list[str] = []
    for table in sorted(catalog):
        rel = catalog[table]
        lines.append(f"-- {table}({', '.join(rel.schema)}) [{len(rel)} rows]")
        for row in sorted(rel.rows, key=repr):
            lines.append("  " + ", ".join(repr(v) for v in row))
    return "\n".join(lines) + "\n"
