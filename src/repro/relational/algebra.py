"""The relational algebra, as functions and as an expression tree.

Two layers:

* plain functions (:func:`select`, :func:`project`, :func:`natural_join`,
  ...) for direct use by the encodings and the datalog engine;
* an expression AST (:class:`Scan` ... :class:`Difference`) with
  :func:`evaluate`, used by experiment E4 to generate random SPJRU terms
  and compare the relational evaluation against UnQL's structural-
  recursion evaluation ("when restricted to input and output data that
  conform to a relational schema, [the UnQL algebra] expresses exactly the
  relational algebra").

A :func:`fixpoint` operator rounds the language out to the "graph datalog"
expressiveness the paper says unbounded search needs; the semi-naive
version of that idea lives in :mod:`repro.datalog.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from .relation import Relation, RelationError

__all__ = [
    "select",
    "select_eq",
    "project",
    "rename",
    "natural_join",
    "product",
    "union",
    "difference",
    "intersection",
    "fixpoint",
    "RelExpr",
    "Scan",
    "Select",
    "Project",
    "Rename",
    "Join",
    "Union",
    "Difference",
    "evaluate",
]


# ---------------------------------------------------------------------------
# Functional operators.


def select(rel: Relation, predicate: Callable[[dict[str, Any]], bool]) -> Relation:
    """sigma: keep rows satisfying an arbitrary predicate over a row dict."""
    schema = rel.schema
    return Relation(
        schema, (row for row in rel if predicate(dict(zip(schema, row))))
    )


def select_eq(rel: Relation, attr: str, value: Any) -> Relation:
    """sigma attr = constant (the common, index-friendly special case)."""
    pos = rel.attr_pos(attr)
    return Relation(rel.schema, (row for row in rel if row[pos] == value))


def project(rel: Relation, attrs: tuple[str, ...] | list[str]) -> Relation:
    """pi: keep the named attributes (set semantics removes duplicates)."""
    attrs = tuple(attrs)
    positions = [rel.attr_pos(a) for a in attrs]
    return Relation(attrs, (tuple(row[p] for p in positions) for row in rel))


def rename(rel: Relation, mapping: Mapping[str, str]) -> Relation:
    """rho: rename attributes; unmentioned attributes keep their names."""
    new_schema = tuple(mapping.get(a, a) for a in rel.schema)
    return Relation(new_schema, rel.rows)


def natural_join(left: Relation, right: Relation) -> Relation:
    """|x|: hash join on the shared attribute names.

    With no shared attributes this degrades to the cartesian product, as
    the algebra requires.
    """
    shared = tuple(a for a in left.schema if a in right.schema)
    right_only = tuple(a for a in right.schema if a not in shared)
    out_schema = left.schema + right_only
    if not shared:
        return Relation(
            out_schema, (l + r for l in left.rows for r in right.rows)
        )
    right_index = right.index_on(shared)
    right_only_pos = [right.attr_pos(a) for a in right_only]
    left_shared_pos = [left.attr_pos(a) for a in shared]
    rows = []
    for lrow in left:
        key = tuple(lrow[p] for p in left_shared_pos)
        for rrow in right_index.get(key, ()):
            rows.append(lrow + tuple(rrow[p] for p in right_only_pos))
    return Relation(out_schema, rows)


def product(left: Relation, right: Relation) -> Relation:
    """x: cartesian product; attribute names must be disjoint."""
    overlap = set(left.schema) & set(right.schema)
    if overlap:
        raise RelationError(f"product operands share attributes {sorted(overlap)}")
    return natural_join(left, right)


def _require_same_schema(a: Relation, b: Relation, op: str) -> None:
    if a.schema != b.schema:
        raise RelationError(
            f"{op} needs identical schemas, got {a.schema} vs {b.schema}"
        )


def union(a: Relation, b: Relation) -> Relation:
    """Set union of two relations over identical schemas."""
    _require_same_schema(a, b, "union")
    return Relation(a.schema, a.rows | b.rows)


def difference(a: Relation, b: Relation) -> Relation:
    """Set difference ``a - b`` over identical schemas."""
    _require_same_schema(a, b, "difference")
    return Relation(a.schema, a.rows - b.rows)


def intersection(a: Relation, b: Relation) -> Relation:
    """Set intersection over identical schemas."""
    _require_same_schema(a, b, "intersection")
    return Relation(a.schema, a.rows & b.rows)


def fixpoint(seed: Relation, step: Callable[[Relation], Relation]) -> Relation:
    """Least fixpoint of ``R := seed U step(R)`` (monotone ``step`` assumed).

    The inflationary loop that turns the algebra into the "graph datalog"
    needed for unbounded search (section 3); terminates because the active
    domain is finite and the result only grows.
    """
    current = seed
    while True:
        bigger = union(current, step(current))
        if len(bigger) == len(current):
            return current
        current = bigger


# ---------------------------------------------------------------------------
# Expression AST (for generated SPJRU terms).


class RelExpr:
    """Base class of relational algebra expressions."""


@dataclass(frozen=True)
class Scan(RelExpr):
    name: str


@dataclass(frozen=True)
class Select(RelExpr):
    inner: RelExpr
    attr: str
    value: Any


@dataclass(frozen=True)
class Project(RelExpr):
    inner: RelExpr
    attrs: tuple[str, ...]


@dataclass(frozen=True)
class Rename(RelExpr):
    inner: RelExpr
    old: str
    new: str


@dataclass(frozen=True)
class Join(RelExpr):
    left: RelExpr
    right: RelExpr


@dataclass(frozen=True)
class Union(RelExpr):
    left: RelExpr
    right: RelExpr


@dataclass(frozen=True)
class Difference(RelExpr):
    left: RelExpr
    right: RelExpr


def evaluate(expr: RelExpr, catalog: Mapping[str, Relation]) -> Relation:
    """Evaluate an algebra expression against named base relations."""
    if isinstance(expr, Scan):
        try:
            return catalog[expr.name]
        except KeyError:
            raise RelationError(f"no relation named {expr.name!r}") from None
    if isinstance(expr, Select):
        return select_eq(evaluate(expr.inner, catalog), expr.attr, expr.value)
    if isinstance(expr, Project):
        return project(evaluate(expr.inner, catalog), expr.attrs)
    if isinstance(expr, Rename):
        return rename(evaluate(expr.inner, catalog), {expr.old: expr.new})
    if isinstance(expr, Join):
        return natural_join(evaluate(expr.left, catalog), evaluate(expr.right, catalog))
    if isinstance(expr, Union):
        return union(evaluate(expr.left, catalog), evaluate(expr.right, catalog))
    if isinstance(expr, Difference):
        return difference(evaluate(expr.left, catalog), evaluate(expr.right, catalog))
    raise TypeError(f"unknown algebra node {type(expr).__name__}")


def expr_schema(expr: RelExpr, schemas: Mapping[str, tuple[str, ...]]) -> tuple[str, ...]:
    """Static schema of an expression (used by the random-term generator
    to build only well-typed terms)."""
    if isinstance(expr, Scan):
        return schemas[expr.name]
    if isinstance(expr, Select):
        return expr_schema(expr.inner, schemas)
    if isinstance(expr, Project):
        return expr.attrs
    if isinstance(expr, Rename):
        inner = expr_schema(expr.inner, schemas)
        return tuple(expr.new if a == expr.old else a for a in inner)
    if isinstance(expr, Join):
        left = expr_schema(expr.left, schemas)
        right = expr_schema(expr.right, schemas)
        return left + tuple(a for a in right if a not in left)
    if isinstance(expr, (Union, Difference)):
        return expr_schema(expr.left, schemas)
    raise TypeError(f"unknown algebra node {type(expr).__name__}")
