"""Nest/unnest: the nested-relational extension (section 3's parenthetical).

The paper's expressiveness statement covers "the relational (nested
relational) algebra"; nesting is what separates the two.  A nested value
here is a ``frozenset`` of tuples stored in an ordinary attribute --
relations stay hashable sets of tuples throughout, so every flat operator
keeps working on nested relations unchanged.

* :func:`nest` groups rows by the retained attributes and folds the rest
  into one set-valued attribute;
* :func:`unnest` is its inverse on non-empty groups (the classical
  ``unnest(nest(R)) = R`` identity, property-tested, and the classical
  caveat that ``nest`` after ``unnest`` loses empty groups is documented
  by a test as well).

The tree-level counterparts live in :mod:`repro.unql.relational_bridge`,
where nesting is literally re-parenting subtrees -- the model's natural
operation.
"""

from __future__ import annotations

from .relation import Relation, RelationError

__all__ = ["nest", "unnest"]


def nest(rel: Relation, by: "tuple[str, ...] | list[str]", into: str) -> Relation:
    """Group by ``by``; fold the remaining attributes into set ``into``.

    The nested attribute holds ``frozenset`` of tuples over the folded
    attributes (in schema order of the folded attribute names, sorted).
    """
    by = tuple(by)
    if into in by:
        raise RelationError(f"nested attribute {into!r} collides with keys")
    folded = tuple(sorted(a for a in rel.schema if a not in by))
    if not folded:
        raise RelationError("nothing to nest: every attribute is a key")
    missing = [a for a in by if a not in rel.schema]
    if missing:
        raise RelationError(f"unknown key attributes {missing}")
    by_pos = [rel.attr_pos(a) for a in by]
    folded_pos = [rel.attr_pos(a) for a in folded]
    groups: dict[tuple, set[tuple]] = {}
    for row in rel:
        key = tuple(row[p] for p in by_pos)
        groups.setdefault(key, set()).add(tuple(row[p] for p in folded_pos))
    schema = by + (into,)
    return Relation(
        schema, ((key + (frozenset(values),)) for key, values in groups.items())
    )


def unnest(rel: Relation, attr: str, names: "tuple[str, ...] | list[str]") -> Relation:
    """Explode the set-valued ``attr`` into columns ``names``.

    Each inner tuple must have ``len(names)`` fields; rows whose set is
    empty vanish (the classical information loss).
    """
    names = tuple(names)
    pos = rel.attr_pos(attr)
    rest = [a for a in rel.schema if a != attr]
    rest_pos = [rel.attr_pos(a) for a in rest]
    overlap = set(names) & set(rest)
    if overlap:
        raise RelationError(f"unnested names collide with {sorted(overlap)}")
    rows = []
    for row in rel:
        nested = row[pos]
        if not isinstance(nested, frozenset):
            raise RelationError(f"attribute {attr!r} is not set-valued in {row!r}")
        for inner in nested:
            if len(inner) != len(names):
                raise RelationError(
                    f"inner tuple {inner!r} does not fit names {names}"
                )
            rows.append(tuple(row[p] for p in rest_pos) + tuple(inner))
    return Relation(tuple(rest) + names, rows)
