"""Named-attribute relations: the substrate of section 3's first strategy.

"The first [strategy] is to model the graph as a relational database and
then exploit a relational query language."  This module provides the
relations themselves; :mod:`repro.relational.algebra` provides the
operators, and :mod:`repro.relational.encode` the graph encodings.

A :class:`Relation` is a *set* of tuples over a named schema -- set
semantics, as in the relational algebra the paper compares UnQL against
(duplicates are eliminated on construction).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping

__all__ = ["Relation", "RelationError"]


class RelationError(ValueError):
    """Raised on schema violations (arity/name mismatches...)."""


class Relation:
    """An immutable set of tuples over a named attribute schema."""

    __slots__ = ("_schema", "_rows", "_index_cache")

    def __init__(self, schema: Iterable[str], rows: Iterable[tuple] = ()) -> None:
        self._schema: tuple[str, ...] = tuple(schema)
        if len(set(self._schema)) != len(self._schema):
            raise RelationError(f"duplicate attribute names in {self._schema}")
        frozen: set[tuple] = set()
        width = len(self._schema)
        for row in rows:
            t = tuple(row)
            if len(t) != width:
                raise RelationError(
                    f"row {t!r} has arity {len(t)}, schema {self._schema} wants {width}"
                )
            frozen.add(t)
        self._rows: frozenset[tuple] = frozenset(frozen)
        self._index_cache: dict[tuple[str, ...], dict[tuple, list[tuple]]] = {}

    # -- basics -----------------------------------------------------------------

    @property
    def schema(self) -> tuple[str, ...]:
        return self._schema

    @property
    def rows(self) -> frozenset[tuple]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    def __contains__(self, row: tuple) -> bool:
        return tuple(row) in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._schema == other._schema and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._schema, self._rows))

    def attr_pos(self, name: str) -> int:
        try:
            return self._schema.index(name)
        except ValueError:
            raise RelationError(
                f"no attribute {name!r} in schema {self._schema}"
            ) from None

    def column(self, name: str) -> list[Any]:
        """All values of one attribute (with duplicates, unordered)."""
        pos = self.attr_pos(name)
        return [row[pos] for row in self._rows]

    def as_dicts(self) -> list[dict[str, Any]]:
        """Rows as attribute->value dicts, sorted for stable output."""
        out = [dict(zip(self._schema, row)) for row in self._rows]
        out.sort(key=lambda d: tuple(repr(d[a]) for a in self._schema))
        return out

    # -- hash index (used by joins) ------------------------------------------------

    def index_on(self, attrs: tuple[str, ...]) -> Mapping[tuple, list[tuple]]:
        """A hash index ``key tuple -> rows``; memoized per attribute list."""
        cached = self._index_cache.get(attrs)
        if cached is None:
            positions = [self.attr_pos(a) for a in attrs]
            cached = {}
            for row in self._rows:
                key = tuple(row[p] for p in positions)
                cached.setdefault(key, []).append(row)
            self._index_cache[attrs] = cached
        return cached

    # -- construction helpers --------------------------------------------------------

    @classmethod
    def from_dicts(cls, schema: Iterable[str], dicts: Iterable[Mapping[str, Any]]) -> "Relation":
        schema = tuple(schema)
        return cls(schema, (tuple(d[a] for a in schema) for d in dicts))

    def map_rows(self, fn: Callable[[tuple], tuple]) -> "Relation":
        """A new relation (same schema) with every row passed through ``fn``."""
        return Relation(self._schema, (fn(row) for row in self._rows))

    def pretty(self, max_rows: int = 20) -> str:
        """A fixed-width text table (benchmarks print these)."""
        header = list(self._schema)
        body = [[repr(v) for v in row] for row in sorted(self._rows, key=repr)[:max_rows]]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines += [" | ".join(c.ljust(w) for c, w in zip(r, widths)) for r in body]
        if len(self._rows) > max_rows:
            lines.append(f"... ({len(self._rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Relation {','.join(self._schema)} ({len(self._rows)} rows)>"
