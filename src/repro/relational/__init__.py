"""The relational substrate and the graph/relation encodings.

* :mod:`~repro.relational.relation` -- set-semantics relations;
* :mod:`~repro.relational.algebra` -- SPJRU operators + fixpoint, both as
  functions and as an expression AST;
* :mod:`~repro.relational.encode` -- (node-id, label, node-id) edge
  relations and the relational-database-as-graph encoding;
* :mod:`~repro.relational.translate` -- the UnQL-fragment-to-relational
  translation of section 4 (Fernandez-Popa-Suciu).
"""

from .algebra import (
    Difference,
    Join,
    Project,
    RelExpr,
    Rename,
    Scan,
    Select,
    Union,
    difference,
    evaluate,
    fixpoint,
    intersection,
    natural_join,
    product,
    project,
    rename,
    select,
    select_eq,
    union,
)
from .encode import (
    EDGE_SCHEMA,
    OEM_ATOM_SCHEMA,
    OEM_EDGE_SCHEMA,
    OEM_NAME_SCHEMA,
    dump_relations,
    edge_relation_to_graph,
    graph_to_edge_relation,
    graph_to_relational,
    graph_to_typed_relations,
    oem_to_relations,
    relational_to_graph,
    relations_to_oem,
)
from .relation import Relation, RelationError

__all__ = [
    "Relation",
    "RelationError",
    "select",
    "select_eq",
    "project",
    "rename",
    "natural_join",
    "product",
    "union",
    "difference",
    "intersection",
    "fixpoint",
    "RelExpr",
    "Scan",
    "Select",
    "Project",
    "Rename",
    "Join",
    "Union",
    "Difference",
    "evaluate",
    "EDGE_SCHEMA",
    "OEM_EDGE_SCHEMA",
    "OEM_ATOM_SCHEMA",
    "OEM_NAME_SCHEMA",
    "graph_to_edge_relation",
    "graph_to_typed_relations",
    "edge_relation_to_graph",
    "relational_to_graph",
    "graph_to_relational",
    "oem_to_relations",
    "relations_to_oem",
    "dump_relations",
]
