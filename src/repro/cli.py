"""Command-line interface: ``python -m repro <command> ...``.

A small working surface over the library for shell use:

* ``render FILE``                 -- pretty-print a database
* ``dot FILE``                    -- emit Graphviz DOT
* ``query FILE QUERY``            -- run a UnQL query (result rendered)
* ``lorel FILE QUERY``            -- run a Lorel query (rows printed)
* ``datalog FILE PROGRAM PRED``   -- run a datalog program, print one predicate
* ``find FILE VALUE``             -- the section-1.3 "where is it" query
* ``paths FILE [DEPTH]``          -- DataGuide path vocabulary
* ``schema FILE``                 -- infer and describe a schema
* ``stats FILE [--json]``         -- node/edge/label statistics
* ``profile FILE QUERY``          -- run a query and print its
  :class:`~repro.obs.QueryProfile` (docs/OBSERVABILITY.md)
* ``chaos FILE PATTERN``          -- distributed evaluation under injected
  site failures: partial answers + completeness report (docs/RESILIENCE.md)
* ``distributed FILE PATTERN``    -- parallel RPQ over OS-process sites
  sharing one CSR snapshot; BSP stats (docs/DISTRIBUTED.md)
* ``serve FILE``                  -- long-lived query server over TCP
  (admission control, deadlines, cancellation; docs/SERVICE.md)
* ``remote QUERY``                -- one query against a running server
  (``--engine``, ``--deadline``, ``--budget``, ``--profile``)

``FILE`` is JSON (self-describing nested data, loaded via
:func:`repro.core.builder.from_obj`) or a binary ``.ssd`` graph written by
:mod:`repro.storage`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .browse import where_is
from .core.builder import from_obj, render
from .core.convert import graph_to_oem
from .core.graph import Graph, to_dot
from .core.labels import LabelKind
from .datalog import run_on_graph
from .lorel import lorel, lorel_rows
from .schema.dataguide import DataGuide
from .schema.inference import infer_schema
from .storage import loads
from .unql import unql

__all__ = ["main"]


def load_database(path: "str | Path") -> Graph:
    """Load a database file: `.ssd` binary graphs or JSON text."""
    raw = Path(path).read_bytes()
    if raw[:4] == b"SSD1":
        return loads(raw)
    return from_obj(json.loads(raw.decode("utf-8")))


def _cmd_render(args) -> int:
    print(render(load_database(args.file), max_depth=args.depth))
    return 0


def _cmd_dot(args) -> int:
    print(to_dot(load_database(args.file)))
    return 0


def _cmd_query(args) -> int:
    g = load_database(args.file)
    if getattr(args, "engine", "native") == "native":
        result = unql(args.query, db=g)
    else:
        # sql and auto both route through unql_sql: compilable root-level
        # members run on sqlite, everything else stays native per member.
        from .sqlbackend import unql_sql
        from .unql import parse_query

        result = unql_sql(parse_query(args.query), {"db": g})
    print(render(result))
    return 0


def _cmd_lorel(args) -> int:
    db = graph_to_oem(load_database(args.file))
    engine = getattr(args, "engine", "native")
    if engine == "native":
        answer = lorel(args.query, db)
    else:
        from .sqlbackend import NotCompilable, lorel_sql

        try:
            answer = lorel_sql(args.query, db)
        except NotCompilable:
            if engine == "sql":
                raise  # explicit sql: surface the reason instead of hiding it
            answer = lorel(args.query, db)
    for i, row in enumerate(lorel_rows(answer)):
        print(f"row {i}: {row}")
    return 0


def _cmd_datalog(args) -> int:
    program = Path(args.program).read_text(encoding="utf-8")
    rows = run_on_graph(program, load_database(args.file), args.predicate)
    for row in sorted(rows, key=repr):
        print(row)
    print(f"({len(rows)} facts)", file=sys.stderr)
    return 0


def _cmd_traverse(args) -> int:
    from .unql import traverse

    result = traverse(args.statement, db=load_database(args.file))
    print(render(result))
    return 0


def _cmd_find(args) -> int:
    value: object = args.value
    try:
        value = json.loads(args.value)
    except json.JSONDecodeError:
        pass  # treat as a plain string
    hits = where_is(load_database(args.file), value)
    for hit in hits:
        print(hit)
    return 0 if hits else 1


def _cmd_paths(args) -> int:
    guide = DataGuide(load_database(args.file))
    for path in guide.all_paths(args.depth):
        if path:
            print(".".join(str(lab) for lab in path))
    return 0


def _cmd_schema(args) -> int:
    g = load_database(args.file)
    schema = infer_schema(g)
    print(
        f"inferred schema: {schema.num_nodes} nodes, {schema.num_edges} "
        f"predicate edges (database: {g.num_nodes} nodes)"
    )
    for node in schema.nodes():
        for edge in schema.edges_from(node):
            print(f"  s{edge.src} --[{edge.predicate}]--> s{edge.dst}")
    return 0


def _cmd_stats(args) -> int:
    from .automata.plan_cache import PLAN_METRICS
    from .distributed import PARALLEL_METRICS
    from .obs.export import metrics_to_dict, to_json
    from .service.governor import SERVICE_METRICS
    from .storage import STORAGE_METRICS

    from .planner import planner_for

    g = load_database(args.file)
    by_kind: dict[str, int] = {}
    for edge in g.edges():
        by_kind[edge.label.kind.value] = by_kind.get(edge.label.kind.value, 0) + 1
    planner = planner_for(g)
    if args.json:
        payload = {
            "nodes": g.num_nodes,
            "edges": g.num_edges,
            "cyclic": g.has_cycle(),
            "labels": {k.value: by_kind[k.value] for k in LabelKind if k.value in by_kind},
            "storage": metrics_to_dict(STORAGE_METRICS),
            "plan_cache": metrics_to_dict(PLAN_METRICS),
            "service": metrics_to_dict(SERVICE_METRICS),
            "parallel": metrics_to_dict(PARALLEL_METRICS),
            "planner": planner.describe(),
            "indexes": planner.indexes.accounting(),
        }
        print(to_json(payload))
        return 0
    print(f"nodes:  {g.num_nodes}")
    print(f"edges:  {g.num_edges}")
    print(f"cyclic: {g.has_cycle()}")
    for kind in LabelKind:
        if kind.value in by_kind:
            print(f"labels[{kind.value}]: {by_kind[kind.value]}")
    for name, value in metrics_to_dict(STORAGE_METRICS).items():
        print(f"storage[{name}]: {value}")
    for name, value in metrics_to_dict(PLAN_METRICS).items():
        print(f"plan_cache[{name}]: {value}")
    for name, value in metrics_to_dict(SERVICE_METRICS).items():
        print(f"service[{name}]: {value}")
    for name, value in metrics_to_dict(PARALLEL_METRICS).items():
        print(f"parallel[{name}]: {value}")
    described = planner.describe()
    print(f"planner[guide_available]: {described['guide_available']}")
    for name, value in sorted(described["statistics"].items()):  # type: ignore[union-attr]
        print(f"planner[{name}]: {value}")
    return 0


def _cmd_profile(args) -> int:
    """Run one query under profiling; print its operation counts.

    ``--engine`` picks the evaluator: ``rpq`` (path regex), ``lorel``,
    ``unql``, or ``find`` (the section-1.3 browse search).  ``--planner``
    routes through the index-accelerated planner layer: rpq answers come
    from the path index / DataGuide / guide-masked kernel, lorel pushes
    where-predicates into the value groups, and find probes the value
    index -- the profile then carries the planner's extras counters and
    index hit/miss accounting.  (``unql --planner`` is a no-op: profiled
    UnQL keeps the golden-pinned direct path; unprofiled UnQL already
    plans.)  ``--json`` emits via :mod:`repro.obs.export` for scripting.
    """
    from .automata.plan_cache import DEFAULT_PLAN_CACHE, PLAN_METRICS
    from .browse import find_value_profiled
    from .core.convert import graph_to_oem
    from .lorel import evaluate_lorel_profiled, parse_lorel
    from .obs.export import metrics_to_dict, to_json
    from .unql import evaluate_query_profiled, parse_query

    g = load_database(args.file)
    index_accounting: "dict[str, dict[str, int]] | None" = None
    if args.engine == "rpq":
        if args.planner:
            from .planner import planner_for

            planner = planner_for(g, plan_cache=DEFAULT_PLAN_CACHE)
            results, profile = planner.rpq_profiled(args.query)
            index_accounting = planner.indexes.accounting()
        else:
            from .automata.product import rpq_nodes_profiled

            results, profile = rpq_nodes_profiled(
                g, args.query, plan_cache=DEFAULT_PLAN_CACHE
            )
        preview = f"{len(results)} node(s)"
    elif args.engine == "lorel":
        db = graph_to_oem(g)
        indexes = None
        if args.planner:
            from .planner import oem_indexes_for

            indexes = oem_indexes_for(db)
        result, profile = evaluate_lorel_profiled(
            parse_lorel(args.query), db, query_text=args.query, indexes=indexes
        )
        if indexes is not None:
            index_accounting = {"oem_value_groups": indexes.accounting()}
        answer = result.get(result.lookup_name("Answer"))
        preview = f"answer with {len(answer.children)} member(s)"
    elif args.engine == "unql":
        result, profile = evaluate_query_profiled(
            parse_query(args.query), {"db": g, "DB": g}, query_text=args.query
        )
        preview = f"result graph: {result.num_nodes} node(s), {result.num_edges} edge(s)"
    else:  # find
        value: object = args.query
        try:
            value = json.loads(args.query)
        except json.JSONDecodeError:
            pass
        indexes = None
        if args.planner:
            from .index import GraphIndexes

            indexes = GraphIndexes(g)
        findings, profile = find_value_profiled(g, value, indexes)
        if indexes is not None:
            index_accounting = indexes.accounting()
        preview = f"{len(findings)} finding(s)"
    if args.json:
        payload: dict[str, object] = {
            "profile": profile.as_dict(),
            "plan_cache": metrics_to_dict(PLAN_METRICS),
        }
        if index_accounting is not None:
            payload["indexes"] = index_accounting
        print(to_json(payload))
    else:
        print(f"{args.engine}: {preview}")
        for name, value in profile.as_dict().items():
            print(f"  {name}: {value}")
        for name, value in metrics_to_dict(PLAN_METRICS).items():
            print(f"  plan_cache[{name}]: {value}")
        if index_accounting is not None:
            for index_name, counts in sorted(index_accounting.items()):
                for name, value in sorted(counts.items()):
                    print(f"  indexes[{index_name}.{name}]: {value}")
    return 0


def _cmd_chaos(args) -> int:
    """Run a distributed RPQ under injected failures; print the report.

    Exit code 0 for an exact answer, 3 for a partial one -- scripts can
    tell a degraded run from a clean one.
    """
    from .distributed import distributed_rpq_resilient, partition_graph
    from .resilience import FaultInjector, RetryPolicy

    graph = load_database(args.file)
    dist = partition_graph(graph, args.sites, strategy=args.strategy)
    outages = {f"site:{s}" for s in (args.kill_site or [])}
    injector = FaultInjector(
        seed=args.seed, fail_rate=args.fail_rate, outages=outages
    )
    policy = RetryPolicy(max_attempts=args.retries, base_delay=0.01)
    results, stats, report = distributed_rpq_resilient(
        dist,
        args.pattern,
        injector=injector,
        policy=policy,
        failure_threshold=args.threshold,
    )
    print(f"sites: {args.sites} ({args.strategy}), pattern: {args.pattern}")
    print(
        f"matched {len(results)} node(s) in {stats.supersteps} superstep(s), "
        f"{stats.messages} message(s), total work {stats.total_work}"
    )
    print(report.describe())
    return 0 if report.complete else 3


def _cmd_distributed(args) -> int:
    """Run a path regex on the parallel OS-process runtime; print BSP stats.

    Partitions the frozen graph across ``--workers`` sites with the
    chosen strategy, spawns the worker pool over a shared-memory CSR
    snapshot (``--inline`` runs the same driver in-process for quick
    checks), and reports the observables docs/DISTRIBUTED.md explains:
    cut fraction, supersteps, boundary messages, straggler ratio.  Exit
    code 0 for a complete answer, 3 for a partial one (same convention
    as ``chaos``).
    """
    from .distributed import ParallelRpqPool, build_partition
    from .obs.export import to_json

    fg = load_database(args.file).freeze()
    part = build_partition(fg, args.workers, args.strategy)
    with ParallelRpqPool(
        fg, args.workers, partition=part, inline=args.inline
    ) as pool:
        result = pool.run(args.pattern)
    stats = result.stats
    if args.json:
        print(
            to_json(
                {
                    "matched": len(result.nodes),
                    "complete": result.completeness.complete,
                    "partition": {
                        "strategy": args.strategy,
                        "sites": part.num_sites,
                        "cut_fraction": part.stats.cut_fraction,
                        "balance": part.stats.balance,
                        "sizes": list(part.stats.sizes),
                    },
                    "run": {
                        "supersteps": stats.supersteps,
                        "messages": stats.messages,
                        "messages_per_site": list(stats.messages_per_site),
                        "total_work": stats.total_work,
                        "makespan": stats.makespan,
                        "straggler_ratio": stats.straggler_ratio,
                    },
                }
            )
        )
        return 0 if result.completeness.complete else 3
    mode = "inline" if args.inline else "processes"
    print(
        f"sites: {args.workers} ({args.strategy}, {mode}), "
        f"pattern: {args.pattern}"
    )
    print(
        f"partition: cut {part.stats.cut_fraction:.3f}, "
        f"balance {part.stats.balance:.2f}, sizes {list(part.stats.sizes)}"
    )
    print(
        f"matched {len(result.nodes)} node(s) in {stats.supersteps} "
        f"superstep(s), {stats.messages} message(s)"
    )
    print(
        f"work: total {stats.total_work}, makespan {stats.makespan}, "
        f"straggler ratio {stats.straggler_ratio:.2f}"
    )
    if not result.completeness.complete:
        print(f"PARTIAL: {sorted(result.completeness.failed_keys())}")
    return 0 if result.completeness.complete else 3


def _open_store(directory, bootstrap=None):
    """Open (or bootstrap) a versioned store directory."""
    from .storage.mvcc import CHECKPOINT_NAME, WAL_NAME, VersionedGraphStore

    directory = Path(directory)
    fresh = not (directory / CHECKPOINT_NAME).exists() and not (
        directory / WAL_NAME
    ).exists()
    if fresh and bootstrap is not None:
        return VersionedGraphStore.create(directory, load_database(bootstrap))
    return VersionedGraphStore(directory)


def _cmd_serve(args) -> int:
    """Run the asyncio query server until interrupted (docs/SERVICE.md).

    ``--max-requests N`` exits after serving N requests -- how tests
    (and scripted demos) run a real-socket server with a bounded life.
    With ``--data-dir`` the server is writable: it serves (and accepts
    ``apply`` requests against) a durable versioned store, bootstrapped
    from ``file`` on first start.
    """
    import asyncio

    from .service import AsyncQueryServer, QueryService

    options = dict(
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        max_sessions=args.max_sessions,
        default_deadline=args.deadline,
        default_budget=args.budget,
    )
    store = None
    if args.data_dir is not None:
        store = _open_store(args.data_dir, bootstrap=args.file)
        report = store.recovery
        if report.replayed_records or report.discarded_bytes:
            print(
                f"recovered v{report.commit_seq}: {report.replayed_records} "
                f"WAL records replayed, {report.discarded_bytes} torn bytes "
                "discarded",
                file=sys.stderr,
            )
        service = QueryService(store=store, **options)
    elif args.file is not None:
        service = QueryService(load_database(args.file), **options)
    else:
        print("error: serve needs a database file or --data-dir", file=sys.stderr)
        return 2

    async def run() -> None:
        server = AsyncQueryServer(service, host=args.host, port=args.port)
        await server.start()
        print(f"serving on {args.host}:{server.bound_port}", flush=True)
        try:
            if args.max_requests is not None:
                while service._requests.value < args.max_requests:
                    await asyncio.sleep(0.02)
            else:
                await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        if store is not None:
            store.close()
    return 0


def _cmd_recover(args) -> int:
    """Open a store directory, report what recovery found, and exit.

    The exit code is the contract: 0 means the directory recovered to a
    consistent version (torn tails discarded are normal after a crash);
    2 (via the main error handler) means real corruption -- a checkpoint
    that fails its CRC is damage no WAL replay can repair.
    """
    store = _open_store(args.dir)
    try:
        report = store.recovery
        payload = {
            "version": report.commit_seq,
            "checkpoint_seq": report.checkpoint_seq,
            "replayed_records": report.replayed_records,
            "discarded_bytes": report.discarded_bytes,
            "discarded_records": report.discarded_records,
            "nodes": store.graph.num_nodes,
            "edges": store.graph.num_edges,
        }
        if args.checkpoint:
            store.checkpoint()
            payload["checkpointed"] = True
        print(json.dumps(payload, indent=2, sort_keys=True))
    finally:
        store.close()
    return 0


def _cmd_mutate(args) -> int:
    """Apply a JSON mutation batch to a store directory, durably.

    The batch format is the service's ``apply`` op payload (a list of
    ``{"kind": "node"|"edge"|"root", ...}`` objects; see docs/SERVICE.md)
    -- the CLI and the server share one write dialect.
    """
    from .service.server import label_from_wire

    raw = (
        sys.stdin.read()
        if args.mutations == "-"
        else Path(args.mutations).read_text("utf-8")
    )
    mutations = json.loads(raw)
    if not isinstance(mutations, list) or not mutations:
        raise ValueError("mutations must be a non-empty JSON list")
    store = _open_store(args.dir, bootstrap=args.bootstrap)
    try:
        batch = store.batch()
        names: dict[str, int] = {}

        def resolve(ref):
            if isinstance(ref, str):
                if ref not in names:
                    raise ValueError(f"unknown node name {ref!r}")
                return names[ref]
            return ref

        for mutation in mutations:
            kind = mutation.get("kind")
            if kind == "node":
                node = batch.new_node()
                if mutation.get("name") is not None:
                    names[str(mutation["name"])] = node
            elif kind == "edge":
                batch.add_edge(
                    resolve(mutation.get("src")),
                    label_from_wire(mutation.get("label")),
                    resolve(mutation.get("dst")),
                )
            elif kind == "root":
                batch.set_root(resolve(mutation.get("node")))
            else:
                raise ValueError(f"unknown mutation kind {kind!r}")
        version = batch.commit(sync=True)
        print(json.dumps({"version": version, "nodes": names}, sort_keys=True))
    finally:
        store.close()
    return 0


def _cmd_remote(args) -> int:
    """Send one query to a running ``repro serve`` instance.

    Prints the response JSON; the exit code encodes the typed outcome
    so scripts can branch without parsing: 0 ok, 3 partial, 4 deadline,
    5 overloaded, 2 error.
    """
    import asyncio

    from .obs.export import to_json
    from .service import request_over_socket

    request: dict = {"id": 1, "op": args.engine, "query": args.query}
    if args.deadline is not None:
        request["deadline"] = args.deadline
    if args.budget is not None:
        request["budget"] = args.budget
    if args.profile:
        request["profile"] = True
    responses = asyncio.run(
        request_over_socket(args.host, args.server_port, [request])
    )
    if not responses:
        print("error: server closed the connection", file=sys.stderr)
        return 2
    response = responses[0]
    print(to_json(response))
    return {"ok": 0, "partial": 3, "deadline": 4, "overloaded": 5}.get(
        response.get("status"), 2
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Semistructured data toolkit (Buneman, PODS 1997)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("render", help="pretty-print a database")
    p.add_argument("file")
    p.add_argument("--depth", type=int, default=12)
    p.set_defaults(fn=_cmd_render)

    p = sub.add_parser("dot", help="emit Graphviz DOT")
    p.add_argument("file")
    p.set_defaults(fn=_cmd_dot)

    p = sub.add_parser("query", help="run a UnQL query")
    p.add_argument("file")
    p.add_argument("query")
    p.add_argument(
        "--engine",
        choices=["native", "sql", "auto"],
        default="native",
        help="evaluation engine: native traversal, or the SQL backend",
    )
    p.set_defaults(fn=_cmd_query)

    p = sub.add_parser("lorel", help="run a Lorel query")
    p.add_argument("file")
    p.add_argument("query")
    p.add_argument(
        "--engine",
        choices=["native", "sql", "auto"],
        default="native",
        help="sql requires a compilable query; auto falls back to native",
    )
    p.set_defaults(fn=_cmd_lorel)

    p = sub.add_parser("datalog", help="run a datalog program")
    p.add_argument("file")
    p.add_argument("program", help="path to a .dl file")
    p.add_argument("predicate", help="predicate whose facts to print")
    p.set_defaults(fn=_cmd_datalog)

    p = sub.add_parser("traverse", help="restructure: replace/delete/collapse/shortcut")
    p.add_argument("file")
    p.add_argument("statement", help='e.g. "traverse db replace Movie => Film"')
    p.set_defaults(fn=_cmd_traverse)

    p = sub.add_parser("find", help="where is this value? (section 1.3)")
    p.add_argument("file")
    p.add_argument("value")
    p.set_defaults(fn=_cmd_find)

    p = sub.add_parser("paths", help="DataGuide path vocabulary")
    p.add_argument("file")
    p.add_argument("depth", type=int, nargs="?", default=4)
    p.set_defaults(fn=_cmd_paths)

    p = sub.add_parser("schema", help="infer a graph schema")
    p.add_argument("file")
    p.set_defaults(fn=_cmd_schema)

    p = sub.add_parser("stats", help="database statistics")
    p.add_argument("file")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser("profile", help="run a query, print its operation counts")
    p.add_argument("file")
    p.add_argument("query")
    p.add_argument(
        "--engine",
        choices=["rpq", "lorel", "unql", "find"],
        default="rpq",
        help="evaluator to profile (default: rpq path regex)",
    )
    p.add_argument(
        "--planner",
        action="store_true",
        help="route through the index-accelerated planner (extras counters)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser(
        "chaos",
        help="distributed query under injected site failures (resilience demo)",
    )
    p.add_argument("file")
    p.add_argument("pattern", help='path regex, e.g. "Entry.Movie.Title"')
    p.add_argument("--sites", type=int, default=4)
    p.add_argument("--strategy", choices=["bfs", "hash"], default="bfs")
    p.add_argument("--fail-rate", type=float, default=0.0, help="transient failure probability per site contact")
    p.add_argument("--kill-site", type=int, action="append", help="permanently dead site id (repeatable)")
    p.add_argument("--seed", type=int, default=0, help="fault schedule seed (reproducible chaos)")
    p.add_argument("--retries", type=int, default=4, help="max attempts per site contact")
    p.add_argument("--threshold", type=int, default=3, help="breaker trip threshold (consecutive failures)")
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser(
        "distributed",
        help="parallel RPQ over OS-process sites (shared-memory snapshot)",
    )
    p.add_argument("file")
    p.add_argument("pattern", help='path regex, e.g. "link*.cite"')
    p.add_argument("--workers", type=int, default=4, help="site/worker count")
    p.add_argument(
        "--strategy",
        choices=["hash", "label", "greedy"],
        default="greedy",
        help="partition strategy (docs/DISTRIBUTED.md)",
    )
    p.add_argument(
        "--inline",
        action="store_true",
        help="run the BSP driver in-process (no spawn, no shared memory)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=_cmd_distributed)

    p = sub.add_parser(
        "serve", help="serve queries over TCP (admission control, deadlines)"
    )
    p.add_argument("file", nargs="?", default=None,
                   help="database to serve (or to bootstrap --data-dir from)")
    p.add_argument("--data-dir", default=None,
                   help="versioned store directory: serve writable with WAL durability")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0, help="0 picks a free port (printed)")
    p.add_argument("--max-inflight", type=int, default=8, help="concurrent query slots")
    p.add_argument("--max-queue", type=int, default=16, help="bounded admission queue")
    p.add_argument("--max-sessions", type=int, default=64, help="connected client cap")
    p.add_argument("--deadline", type=float, default=None, help="default per-query deadline (s)")
    p.add_argument("--budget", type=int, default=None, help="default per-query op budget")
    p.add_argument("--max-requests", type=int, default=None, help="exit after N requests (tests)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("recover", help="recover a versioned store directory, print a report")
    p.add_argument("dir")
    p.add_argument("--checkpoint", action="store_true",
                   help="also fold the recovered WAL into a fresh checkpoint")
    p.set_defaults(fn=_cmd_recover)

    p = sub.add_parser("mutate", help="apply a JSON mutation batch to a store directory")
    p.add_argument("dir")
    p.add_argument("mutations", help="JSON file of mutations ('-' reads stdin)")
    p.add_argument("--bootstrap", default=None,
                   help="database file to initialize an empty store from")
    p.set_defaults(fn=_cmd_mutate)

    p = sub.add_parser("remote", help="run one query against a repro serve instance")
    p.add_argument("query")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--server-port", type=int, required=True)
    p.add_argument(
        "--engine", choices=["rpq", "lorel", "unql", "find"], default="rpq"
    )
    p.add_argument("--deadline", type=float, default=None, help="per-query deadline (s)")
    p.add_argument("--budget", type=int, default=None, help="per-query op budget")
    p.add_argument("--profile", action="store_true", help="attach a QueryProfile")
    p.set_defaults(fn=_cmd_remote)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except Exception as exc:  # surface library errors as clean CLI errors
        print(f"error: {exc}", file=sys.stderr)
        return 2
