"""``python -m repro`` entry point: dispatches to :mod:`repro.cli`.

See ``python -m repro --help`` for the command list (render, dot, query,
lorel, datalog, find, paths, schema, stats).
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
