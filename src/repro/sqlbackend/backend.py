"""The SQL engines' facade: per-snapshot and per-database backends.

:class:`SqlBackend` owns one sqlite connection per frozen snapshot --
edge/label tables, the wide tables, a compiled-plan cache, and counters
-- and answers root-origin path-regex queries.  :class:`LorelSqlBackend`
is its OEM twin for Lorel queries, version-checked against the mutable
database the way :func:`repro.planner.pushdown.oem_indexes_for` is.
:func:`unql_sql` routes the root-level fixed members of an UnQL query
through the snapshot backend, reusing the optimizer's resolved-edge
annotation so the native evaluator consumes SQL-computed target sets.

Routing policy (:meth:`SqlBackend.favors`): SQL is preferred exactly
when the compiled plan avoids the recursive fixpoint -- ``wide`` and
``chain`` plans are sargable scans and joins, where sqlite's indexes
beat the Python product automaton on flat data; ``automaton`` plans
re-run the same BFS the kernel runs, minus the kernel's pruning, so
those stay native.  The differential suite holds regardless of routing:
any compiled plan agrees with the kernel, the policy only picks speed.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Mapping

from ..automata.regex import PathRegex, parse_path_regex
from ..core.frozen import freeze
from ..lorel.ast import LorelQuery
from ..lorel.evaluator import construct_answer
from ..lorel.parser import parse_lorel
from ..planner.stats import GraphStatistics
from ..unql.ast import Binding, Pattern, PatternMember, Query, RegexEdge
from ..unql.evaluator import evaluate_query
from ..unql.optimizer import _IndexResolvedEdge
from .compiler import CompiledQuery, compile_rpq
from .encode import connect, encode_graph, encode_oem, encode_wide
from .errors import NotCompilable
from .lorel_sql import compile_lorel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.frozen import FrozenGraph
    from ..core.graph import Graph
    from ..core.oem import OemDatabase, Oid

__all__ = [
    "SqlBackend",
    "sql_backend_for",
    "LorelSqlBackend",
    "lorel_sql_backend_for",
    "lorel_sql",
    "unql_sql",
]


class SqlBackend:
    """The relational engine over one frozen snapshot.

    Construction pays the load once (edge + label + wide tables, all
    indexes); queries then compile against the snapshot's vocabulary
    (plans cached by pattern text) and execute on sqlite.  ``last_sql``
    and ``counters`` expose what happened for ``describe()``/metrics.
    """

    def __init__(
        self,
        fg: "FrozenGraph",
        *,
        stats: "GraphStatistics | None" = None,
        guide=None,
    ) -> None:
        self.fg = fg
        self.stats = stats if stats is not None else GraphStatistics.from_frozen(fg)
        self.guide = guide
        self.conn = connect()
        encode_graph(self.conn, fg)
        self.catalog = encode_wide(self.conn, fg)
        self._plans: dict[str, CompiledQuery] = {}
        self.counters = {
            "compiles": 0,
            "plan_hits": 0,
            "executes": 0,
            "not_compilable": 0,
        }
        self.last_sql: "str | None" = None

    def compile(self, pattern: "str | PathRegex") -> CompiledQuery:
        """The cached SQL plan for a pattern (raises :class:`NotCompilable`)."""
        if isinstance(pattern, str):
            key, regex = pattern, None
        else:
            key, regex = str(pattern), pattern
        plan = self._plans.get(key)
        if plan is not None:
            self.counters["plan_hits"] += 1
            return plan
        if regex is None:
            regex = parse_path_regex(pattern)
        self.counters["compiles"] += 1
        try:
            plan = compile_rpq(
                self.fg,
                regex,
                self.stats,
                guide=self.guide,
                catalog=self.catalog,
            )
        except NotCompilable:
            self.counters["not_compilable"] += 1
            raise
        self._plans[key] = plan
        return plan

    def rpq_nodes(
        self, pattern: "str | PathRegex", *, tracer=None
    ) -> set[int]:
        """Root-origin RPQ answer, computed by sqlite."""
        if tracer is not None:
            with tracer.span("sql.compile", pattern=str(pattern)):
                plan = self.compile(pattern)
        else:
            plan = self.compile(pattern)
        self.counters["executes"] += 1
        self.last_sql = plan.sql
        if tracer is not None:
            with tracer.span("sql.execute", kind=plan.kind) as span:
                rows = self.conn.execute(plan.sql, plan.params).fetchall()
                span.annotate(rows=len(rows))
        else:
            rows = self.conn.execute(plan.sql, plan.params).fetchall()
        return {row[0] for row in rows}

    def favors(self, pattern: "str | PathRegex") -> bool:
        """True when the SQL plan should beat the native kernel."""
        try:
            plan = self.compile(pattern)
        except NotCompilable:
            return False
        return plan.kind in ("wide", "chain")


def sql_backend_for(
    graph: "Graph | FrozenGraph",
    *,
    stats: "GraphStatistics | None" = None,
    guide=None,
) -> SqlBackend:
    """The snapshot-cached :class:`SqlBackend` (freezing if needed).

    Memoized in the snapshot's extension slot like
    :func:`repro.planner.planner_for`; ``stats``/``guide`` apply only to
    the creating call.
    """
    fg = freeze(graph)
    backend = fg._ext.get("sqlbackend")
    if not isinstance(backend, SqlBackend):
        backend = SqlBackend(fg, stats=stats, guide=guide)
        fg._ext["sqlbackend"] = backend
    return backend


# ---------------------------------------------------------------------------
# Lorel over OEM.


class LorelSqlBackend:
    """The relational engine over one OEM database.

    The sqlite image is a snapshot: :meth:`is_stale` compares the
    database's mutation version, and :func:`lorel_sql_backend_for`
    rebuilds on mismatch (the ``oem_indexes_for`` idiom).
    """

    def __init__(self, db: "OemDatabase", db_name: str = "DB") -> None:
        self.db = db
        self.db_name = db_name
        self._version = db.version
        self.conn = connect()
        encode_oem(self.conn, db)
        self._plans: dict[str, CompiledQuery] = {}
        self.counters = {"compiles": 0, "plan_hits": 0, "executes": 0}
        self.last_sql: "str | None" = None

    def is_stale(self) -> bool:
        return self.db.version != self._version

    def compile(self, query: LorelQuery) -> CompiledQuery:
        key = repr(query)
        plan = self._plans.get(key)
        if plan is not None:
            self.counters["plan_hits"] += 1
            return plan
        self.counters["compiles"] += 1
        plan = compile_lorel(query, self.db, self.db_name)
        self._plans[key] = plan
        return plan

    def bindings(self, query: LorelQuery) -> "list[dict[str, Oid]]":
        """The binding environments, computed by sqlite.

        Row order is the native enumeration order (lexicographic over
        the alias columns), so the list equals
        :func:`repro.lorel.lorel_bindings` element for element.
        """
        plan = self.compile(query)
        self.counters["executes"] += 1
        self.last_sql = plan.sql
        aliases = plan.info["aliases"]
        rows = self.conn.execute(plan.sql, plan.params).fetchall()
        return [dict(zip(aliases, row)) for row in rows]

    def evaluate(self, query: LorelQuery, *, tracer=None) -> "OemDatabase":
        """Full query: SQL bindings + the shared native construction.

        Mirrors :func:`repro.lorel.lorel` exactly: the same
        statistics-driven from-clause reordering runs first, so the
        answer *rows come out in the same order* as the native default
        path -- without it, a reordered native enumeration (outer/inner
        clause swap) and the as-written ``ORDER BY`` disagree on
        multi-clause queries even when the binding set is identical
        (found by the differential harness).
        """
        from ..lorel.optimizer import reorder_from_clauses
        from ..planner.pushdown import oem_indexes_for

        query = reorder_from_clauses(
            query, stats=oem_indexes_for(self.db).stats
        )
        if tracer is not None:
            with tracer.span("lorel.sql", clauses=len(query.from_clauses)) as span:
                envs = self.bindings(query)
                span.annotate(bindings=len(envs))
        else:
            envs = self.bindings(query)
        return construct_answer(query, self.db, envs, self.db_name)


_LOREL_BACKENDS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def lorel_sql_backend_for(
    db: "OemDatabase", db_name: str = "DB"
) -> LorelSqlBackend:
    """The cached :class:`LorelSqlBackend` of ``db``, rebuilt when stale."""
    cached = _LOREL_BACKENDS.get(db)
    if cached is None or cached.is_stale() or cached.db_name != db_name:
        cached = LorelSqlBackend(db, db_name)
        _LOREL_BACKENDS[db] = cached
    return cached


def lorel_sql(
    text: "str | LorelQuery", db: "OemDatabase", db_name: str = "DB"
) -> "OemDatabase":
    """Parse and evaluate a Lorel query on the SQL engine.

    The drop-in twin of :func:`repro.lorel.lorel`; raises
    :class:`NotCompilable` when the query is outside the SQL fragment
    (callers fall back to the native evaluator).
    """
    query = parse_lorel(text) if isinstance(text, str) else text
    return lorel_sql_backend_for(db, db_name).evaluate(query)


# ---------------------------------------------------------------------------
# UnQL routing.


def unql_sql(
    query: Query, sources: "Mapping[str, Graph]", *, backend: "SqlBackend | None" = None
) -> "Graph":
    """Evaluate an UnQL query with SQL-resolved root-level members.

    The twin of :func:`repro.unql.optimizer.evaluate_with_indexes`: every
    compilable regex member of the primary source's root-level bindings
    is answered by the SQL backend and substituted as a resolved-edge
    annotation; the native evaluator does the rest (nested patterns,
    construction, conditions).  Uncompilable members simply stay native
    -- per-member fallback, never a wrong answer.
    """
    names = [b.source for b in query.bindings if not b.source_is_var]
    if not names:
        return evaluate_query(query, sources)
    primary = names[0]
    if backend is None:
        backend = sql_backend_for(freeze(sources[primary]))
    new_bindings = []
    for binding in query.bindings:
        if binding.source_is_var or binding.source != primary:
            new_bindings.append(binding)
            continue
        members = []
        for member in binding.pattern.members:
            targets = None
            if type(member.edge) is RegexEdge:
                try:
                    targets = frozenset(backend.rpq_nodes(member.edge.regex))
                except NotCompilable:
                    targets = None
            if targets is None:
                members.append(member)
            else:
                members.append(
                    PatternMember(
                        _IndexResolvedEdge(
                            member.edge.regex, member.edge.text, targets
                        ),
                        member.target,
                    )
                )
        new_bindings.append(
            Binding(Pattern(tuple(members)), binding.source, binding.source_is_var)
        )
    rewritten = Query(query.construct, tuple(new_bindings), query.conditions)
    return evaluate_query(rewritten, sources)
