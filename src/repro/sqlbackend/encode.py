"""Loading snapshots into sqlite: the relational side of the bridge.

The paper's section 3 names "model the graph as a relational database
and then exploit a relational query language" as the first evaluation
strategy for semistructured queries.  This module is that modelling
step, concretely, on stdlib :mod:`sqlite3`:

* a :class:`~repro.core.frozen.FrozenGraph` becomes ``edge(src, lid,
  dst)`` plus a ``label(lid, kind, value)`` dictionary -- the interned
  label-id space is shared with the frozen kernel, so a compiled SQL
  plan and a compiled automaton speak the same alphabet;
* an :class:`~repro.core.oem.OemDatabase` becomes ``oem_edge(src, pos,
  label, dst)`` / ``oem_atom(oid, kind, value)`` / ``oem_name(name,
  oid)`` -- the sqlite image of
  :func:`repro.relational.encode.oem_to_relations`, whose round-trip
  identity the property suite pins;
* the :func:`repro.schema.to_relational.record_regions` of a graph
  denormalize into *wide tables* ``wide_member(coll, member, rec)`` and
  ``wide_attr(rec, attr, vnode, kind, value, leaf)``, the
  DataGuide-derived fast lane for flat data.

Lorel's coercing comparisons cannot be expressed in sqlite's own
operators (its ``LIKE`` is case-insensitive, its ``CAST`` parses
differently from Python), so :func:`register_functions` installs the
*actual* :mod:`repro.lorel.coerce` functions as deterministic UDFs --
one source of truth for both engines, which is what makes differential
equality provable rather than approximate.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.labels import Label
from ..lorel.coerce import compare_values, like_value
from ..relational.encode import _atom_kind, _decode_atom
from ..schema.to_relational import record_regions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.frozen import FrozenGraph
    from ..core.oem import OemDatabase

__all__ = [
    "connect",
    "register_functions",
    "encode_graph",
    "encode_oem",
    "encode_wide",
    "WideCatalog",
    "store_label",
    "load_label",
]


def store_label(label: Label) -> tuple[str, object]:
    """``(kind, storage value)`` of a label; bools stored as 0/1."""
    value = label.value
    if isinstance(value, bool):
        value = int(value)
    return label.kind.value, value


def load_label(kind: str, value: object) -> object:
    """Inverse of :func:`store_label` for the Python-side value."""
    if kind == "bool":
        return bool(value)
    return value


def register_functions(conn: sqlite3.Connection) -> None:
    """Install Lorel's coercions as deterministic scalar UDFs.

    ``lorel_cmp(kind1, value1, op, kind2, value2)`` and
    ``lorel_like(kind, value, pattern)`` decode the (kind, storage)
    pairs back into Python atoms and delegate to
    :mod:`repro.lorel.coerce` -- so ``"1942" = 1942`` holds in SQL
    exactly when it holds natively, and ``like`` is case-sensitive
    ``fnmatchcase``, not sqlite's ``LIKE``.
    """

    def lorel_cmp(k1: str, v1: object, op: str, k2: str, v2: object) -> int:
        return int(compare_values(_decode_atom(k1, v1), op, _decode_atom(k2, v2)))

    def lorel_like(kind: str, value: object, pattern: str) -> int:
        return int(like_value(_decode_atom(kind, value), pattern))

    conn.create_function("lorel_cmp", 5, lorel_cmp, deterministic=True)
    conn.create_function("lorel_like", 3, lorel_like, deterministic=True)


def connect() -> sqlite3.Connection:
    """A fresh in-memory database with the UDFs installed."""
    conn = sqlite3.connect(":memory:")
    register_functions(conn)
    return conn


def encode_graph(conn: sqlite3.Connection, fg: "FrozenGraph") -> None:
    """Load a frozen snapshot as ``edge`` + ``label`` tables.

    ``lid`` is the snapshot's own interned label id, loaded straight
    from the CSR arrays (one executemany, no Label objects touched);
    the covering index on ``(lid, src, dst)`` is what the chain
    compiler's per-step lookups scan, and ``(src, lid)`` serves the
    seeded direction.
    """
    conn.executescript(
        """
        CREATE TABLE edge (src INTEGER NOT NULL, lid INTEGER NOT NULL,
                           dst INTEGER NOT NULL);
        CREATE TABLE label (lid INTEGER PRIMARY KEY, kind TEXT NOT NULL, value);
        """
    )
    conn.executemany(
        "INSERT INTO edge VALUES (?, ?, ?)",
        zip(fg.srcs, fg.label_ids, fg.targets),
    )
    conn.executemany(
        "INSERT INTO label VALUES (?, ?, ?)",
        (
            (lid, *store_label(label))
            for lid, label in enumerate(fg.labels_seq)
        ),
    )
    conn.executescript(
        """
        CREATE INDEX edge_src ON edge(src, lid);
        CREATE INDEX edge_lid ON edge(lid, src, dst);
        CREATE INDEX edge_dst ON edge(dst, lid, src);
        """
    )
    conn.commit()


def encode_oem(conn: sqlite3.Connection, db: "OemDatabase") -> None:
    """Load an OEM database as ``oem_edge`` / ``oem_atom`` / ``oem_name``.

    The sqlite image of :func:`repro.relational.encode.oem_to_relations`
    (same schemas, same kind discriminators); atoms store bools as 0/1
    with ``kind='bool'``, so sqlite's numeric affinity cannot conflate
    ``True`` with ``1`` -- comparisons always go through the UDFs, which
    decode by kind first.
    """
    conn.executescript(
        """
        CREATE TABLE oem_edge (src INTEGER NOT NULL, pos INTEGER NOT NULL,
                               label TEXT NOT NULL, dst INTEGER NOT NULL);
        CREATE TABLE oem_atom (oid INTEGER PRIMARY KEY, kind TEXT NOT NULL, value);
        CREATE TABLE oem_name (name TEXT PRIMARY KEY, oid INTEGER NOT NULL);
        """
    )
    edge_rows: list[tuple] = []
    atom_rows: list[tuple] = []
    for oid in sorted(db.oids()):
        obj = db.get(oid)
        if obj.is_atomic:
            atom = obj.atom
            atom_rows.append(
                (oid, _atom_kind(atom), int(atom) if isinstance(atom, bool) else atom)
            )
            continue
        for pos, (label, child) in enumerate(obj.children):
            edge_rows.append((oid, pos, label, child))
    conn.executemany("INSERT INTO oem_edge VALUES (?, ?, ?, ?)", edge_rows)
    conn.executemany("INSERT INTO oem_atom VALUES (?, ?, ?)", atom_rows)
    conn.executemany("INSERT INTO oem_name VALUES (?, ?)", sorted(db.names.items()))
    conn.executescript(
        """
        CREATE INDEX oem_edge_src ON oem_edge(src, label, dst);
        CREATE INDEX oem_edge_label ON oem_edge(label, src, dst);
        """
    )
    conn.commit()


@dataclass
class WideCatalog:
    """The wide tables' compile-time metadata.

    ``uncovered`` is the soundness complement from
    :class:`~repro.schema.to_relational.RegionReport`: a collection
    node with *member*-edges not wholly record-shaped.  The compiler
    may only answer ``...member...`` from the wide tables when none of
    its source nodes appear here (a node with no member edges at all is
    trivially covered -- it contributes nothing on either engine).
    """

    uncovered: set[tuple[int, str]] = field(default_factory=set)
    num_rows: int = 0

    def covers(self, nodes, member: str) -> bool:
        return all((node, member) not in self.uncovered for node in nodes)


def encode_wide(conn: sqlite3.Connection, fg: "FrozenGraph") -> WideCatalog:
    """Denormalize every record region into the wide tables.

    ``wide_member`` holds one row per (collection, member, record) link
    (kept separate from the attribute rows so attribute-less records
    still exist); ``wide_attr`` one row per attribute cell, carrying the
    value node, the (kind, value) pair, and the leaf node -- the three
    node positions a path query's tail can land on.
    """
    report = record_regions(fg)
    conn.executescript(
        """
        CREATE TABLE wide_member (coll INTEGER NOT NULL, member TEXT NOT NULL,
                                  rec INTEGER NOT NULL);
        CREATE TABLE wide_attr (rec INTEGER NOT NULL, attr TEXT NOT NULL,
                                vnode INTEGER NOT NULL, kind TEXT NOT NULL,
                                value, leaf INTEGER NOT NULL);
        """
    )
    member_rows: list[tuple] = []
    attr_rows: list[tuple] = []
    seen_rows: set[int] = set()
    for region in report.regions:
        for row in region.rows:
            member_rows.append((region.collection, region.member, row.node))
            if row.node in seen_rows:
                continue  # a record shared by several collections: one attr set
            seen_rows.add(row.node)
            for attr, vnode, value, leaf in row.attrs:
                kind = _atom_kind(value)
                attr_rows.append(
                    (
                        row.node,
                        attr,
                        vnode,
                        kind,
                        int(value) if isinstance(value, bool) else value,
                        leaf,
                    )
                )
    conn.executemany("INSERT INTO wide_member VALUES (?, ?, ?)", member_rows)
    conn.executemany("INSERT INTO wide_attr VALUES (?, ?, ?, ?, ?, ?)", attr_rows)
    conn.executescript(
        """
        CREATE INDEX wide_member_coll ON wide_member(coll, member, rec);
        CREATE INDEX wide_attr_rec ON wide_attr(rec, attr);
        CREATE INDEX wide_attr_value ON wide_attr(attr, kind, value);
        """
    )
    conn.commit()
    return WideCatalog(uncovered=report.uncovered, num_rows=len(seen_rows))
