"""Compile-to-relational SQL backend (section 3, evaluation option 1).

"One obvious approach is to model the graph as a relational database and
then exploit a relational query language" -- this package does exactly
that, on stdlib :mod:`sqlite3`: snapshots load as edge/label tables
(plus DataGuide-derived wide tables for the record-shaped parts),
root-origin path-regex queries and Lorel's from/where core compile to
SQL (self-join chains, recursive-CTE fixpoints for closure), and every
query outside the compilable fragment raises :class:`NotCompilable` so
routing layers fall back to the native kernel -- refuse, never
approximate.  The differential test harness in ``tests/differential``
cross-checks both engines on generated databases and queries.
"""

from .backend import (
    LorelSqlBackend,
    SqlBackend,
    lorel_sql,
    lorel_sql_backend_for,
    sql_backend_for,
    unql_sql,
)
from .compiler import CompiledQuery, compile_rpq
from .encode import (
    WideCatalog,
    connect,
    encode_graph,
    encode_oem,
    encode_wide,
    register_functions,
)
from .errors import NotCompilable
from .joins import JoinGraph, JoinNode, greedy_order
from .lorel_sql import compile_lorel, oem_vocabulary

__all__ = [
    "NotCompilable",
    "CompiledQuery",
    "compile_rpq",
    "compile_lorel",
    "oem_vocabulary",
    "SqlBackend",
    "sql_backend_for",
    "LorelSqlBackend",
    "lorel_sql_backend_for",
    "lorel_sql",
    "unql_sql",
    "connect",
    "register_functions",
    "encode_graph",
    "encode_oem",
    "encode_wide",
    "WideCatalog",
    "JoinGraph",
    "JoinNode",
    "greedy_order",
]
