"""Lowering Lorel's from/where core to SQL over the OEM tables.

The split mirrors Lore's own architecture: the *binding environments*
(the expensive, join-shaped part) are computed in SQL, and answer
construction -- deep-copying projected objects into the ``Answer``
database -- stays on the native evaluator, shared verbatim between
engines.  One CTE per from-clause builds the environment table
column-by-column::

    WITH RECURSIVE
    b0(c0) AS (...bind first alias...),
    b1(c0, c1) AS (...extend with second...),
    ...
    SELECT c0, c1 FROM b1 AS b WHERE <where> ORDER BY c0, c1

``SELECT DISTINCT`` per level reproduces the native set-of-targets
semantics and ``ORDER BY c0..cN`` its nested ``sorted(targets)``
enumeration, so the row list *is* the native environment list.  Closure
paths materialize their DFA over the database's symbol vocabulary into
a values table and run a recursive ``(seed, node, state)`` fixpoint;
where-clauses become ``EXISTS`` subqueries over ``oem_atom`` calling
the ``lorel_cmp`` / ``lorel_like`` UDFs -- the native coercions
themselves, so the two engines cannot drift on ``"1942" = 1942``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.labels import sym
from ..core.oem import OemError
from ..lorel.ast import (
    BoolOp,
    Compare,
    ExistsPredicate,
    LikePredicate,
    LiteralOperand,
    LorelQuery,
    NotOp,
    PathOperand,
)
from ..lorel.coerce import compare_values, like_value
from ..relational.encode import _atom_kind
from .compiler import MAX_IN_LIST, CompiledQuery, _materialize_dfa, chain_steps
from .errors import NotCompilable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.oem import OemDatabase

__all__ = ["compile_lorel", "oem_vocabulary"]


def oem_vocabulary(db: "OemDatabase") -> list[str]:
    """The sorted distinct edge-label vocabulary of an OEM database."""
    seen: set[str] = set()
    for oid in db.oids():
        obj = db.get(oid)
        if not obj.is_atomic:
            seen.update(label for label, _child in obj.children)
    return sorted(seen)


def _quote(text: str) -> str:
    return "'" + text.replace("'", "''") + "'"


def _label_clause(expr: str, names: "list[str]") -> str:
    if len(names) == 1:
        return f"{expr} = {_quote(names[0])}"
    return f"{expr} IN ({', '.join(_quote(n) for n in sorted(names))})"


def _resolve_names(preds, vocab: "list[str]") -> "list[str] | None":
    """Vocabulary labels a step matches; ``None`` when unconstrained."""
    matched = [n for n in vocab if any(p.matches(sym(n)) for p in preds)]
    if len(matched) == len(vocab) and matched:
        return None
    if len(matched) > MAX_IN_LIST:
        raise NotCompilable(
            "vocabulary",
            f"step matches {len(matched)} labels (cap {MAX_IN_LIST})",
        )
    return matched


def _literal_pair(value: object) -> tuple[str, object]:
    return _atom_kind(value), int(value) if isinstance(value, bool) else value


class _LorelCompiler:
    """One compilation: accumulates CTEs, columns, and parameters."""

    def __init__(self, query: LorelQuery, db: "OemDatabase", db_name: str) -> None:
        self.query = query
        self.db = db
        self.db_name = db_name
        self.vocab = oem_vocabulary(db)
        self.labels = [sym(n) for n in self.vocab]
        self.ctes: list[str] = []
        self.post_ctes: list[str] = []  # where-clause pair CTEs, after bN
        self.params: list[object] = []
        self.columns: dict[str, int] = {}  # alias -> column index
        self.empty: "str | None" = None
        self.counter = 0

    # -- shared helpers -------------------------------------------------------

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def const_seed(self, base: str) -> int:
        """Resolve a non-alias base exactly like the native runner.

        The runner's guard comes first: a base that is neither the
        database name nor a registered name is a native *runtime error*,
        so compiling it (to anything) would change observable behavior
        -- refuse instead.
        """
        if base != self.db_name and base not in self.db.names:
            raise NotCompilable("base", f"unknown alias or database {base!r}")
        try:
            return self.db.lookup_name(
                base if base in self.db.names else self.db_name
            )
        except OemError as exc:
            raise NotCompilable("base", str(exc)) from exc

    def seed_expr(self, base: str, row_alias: str) -> str:
        """SQL expression for an operand's start object."""
        if base in self.columns:
            return f"{row_alias}.c{self.columns[base]}"
        if base == self.db_name or base in self.db.names:
            return str(self.const_seed(base))
        raise NotCompilable("base", f"unknown alias or database {base!r}")

    def dfa_cte(self, path) -> tuple[str, int, "list[int]"]:
        """Materialize a closure path's DFA as a values CTE.

        Returns ``(cte name, start state, accepting states)``.
        """
        start, transitions, accepting, _ = _materialize_dfa(path, self.labels)
        name = self.fresh("d")
        if transitions:
            values = ", ".join(
                f"({s}, {_quote(self.vocab[lid])}, {t})"
                for s, lid, t in transitions
            )
            body = f"VALUES {values}"
        else:
            body = "SELECT 0, '', 0 WHERE 0"
        self.ctes.append(f"{name}(s, lbl, t) AS (\n  {body}\n)")
        return name, start, accepting

    def pair_cte(self, path, seeds_sql: str) -> str:
        """A ``(seed, node)`` closure-reachability CTE over ``seeds_sql``."""
        dfa, start, accepting = self.dfa_cte(path)
        pname = self.fresh("p")
        wname = self.fresh("w")
        self.post_ctes.append(
            f"{pname}(seed, node, state) AS (\n"
            f"  SELECT seed, seed, {start} FROM ({seeds_sql})\n"
            "  UNION\n"
            "  SELECT p.seed, e.dst, d.t\n"
            f"  FROM {pname} AS p\n"
            f"  JOIN {dfa} AS d ON d.s = p.state\n"
            "  JOIN oem_edge AS e ON e.src = p.node AND e.label = d.lbl\n"
            ")"
        )
        if accepting:
            states = ", ".join(str(s) for s in accepting)
            where = f"state IN ({states})" if len(accepting) > 1 else (
                f"state = {accepting[0]}"
            )
        else:
            where = "0"
        self.post_ctes.append(
            f"{wname}(seed, node) AS (\n"
            f"  SELECT DISTINCT seed, node FROM {pname} WHERE {where}\n)"
        )
        return wname

    # -- from clauses ---------------------------------------------------------

    def compile_clauses(self) -> None:
        for clause in self.query.from_clauses:
            if clause.alias in self.columns:
                raise NotCompilable("alias", f"rebound alias {clause.alias!r}")
            k = len(self.columns)
            prev = f"b{k - 1}" if k else None
            cols = [f"c{i}" for i in range(k + 1)]
            steps = (
                [] if clause.path is None else chain_steps(clause.path)
            )
            if steps is None:
                self.closure_clause(clause, k, prev, cols)
            else:
                self.chain_clause(clause, k, prev, cols, steps)
            self.columns[clause.alias] = k

    def chain_clause(self, clause, k, prev, cols, steps) -> None:
        name_steps = [_resolve_names(preds, self.vocab) for preds in steps]
        if any(names is not None and not names for names in name_steps):
            self.empty = f"clause {clause.alias!r} matches no label"
        seed = self.seed_expr(clause.base, "b") if prev else str(
            self.const_seed(clause.base)
            if clause.base not in self.columns
            else self._bad_first(clause)
        )
        tables = [f"{prev} AS b"] if prev else []
        conds: list[str] = []
        target = seed
        for i, names in enumerate(name_steps):
            alias = f"e{i}"
            tables.append(f"oem_edge AS {alias}")
            conds.append(f"{alias}.src = {target}")
            if names is not None:
                conds.append(_label_clause(f"{alias}.label", names))
            target = f"{alias}.dst"
        select = ", ".join([f"b.{c}" for c in cols[:-1]] + [target])
        sql = f"  SELECT DISTINCT {select}\n  FROM {', '.join(tables)}"
        if conds:
            sql += "\n  WHERE " + "\n    AND ".join(conds)
        if not tables:  # first clause, pure re-alias of a constant
            sql = f"  SELECT {target}"
        self.ctes.append(f"b{k}({', '.join(cols)}) AS (\n{sql}\n)")

    def _bad_first(self, clause):  # pragma: no cover - parser orders aliases
        raise NotCompilable("base", f"alias base in first clause {clause.base!r}")

    def closure_clause(self, clause, k, prev, cols) -> None:
        dfa, start, accepting = self.dfa_cte(clause.path)
        pname = self.fresh("p")
        if prev:
            seed = self.seed_expr(clause.base, f"{prev}")
            base_sql = f"SELECT DISTINCT {seed}, {seed}, {start} FROM {prev}"
        else:
            const = str(self.const_seed(clause.base))
            base_sql = f"VALUES ({const}, {const}, {start})"
        self.ctes.append(
            f"{pname}(seed, node, state) AS (\n"
            f"  {base_sql}\n"
            "  UNION\n"
            "  SELECT p.seed, e.dst, d.t\n"
            f"  FROM {pname} AS p\n"
            f"  JOIN {dfa} AS d ON d.s = p.state\n"
            "  JOIN oem_edge AS e ON e.src = p.node AND e.label = d.lbl\n"
            ")"
        )
        if not accepting:
            self.empty = f"clause {clause.alias!r} accepts no path"
        states = ", ".join(str(s) for s in accepting) or "NULL"
        seed_col = (
            self.seed_expr(clause.base, "b") if prev else "q.seed"
        )
        if prev:
            sql = (
                f"  SELECT DISTINCT {', '.join(f'b.{c}' for c in cols[:-1])}, q.node\n"
                f"  FROM {prev} AS b\n"
                f"  JOIN {pname} AS q ON q.seed = {seed_col}"
                f" AND q.state IN ({states})"
            )
        else:
            sql = (
                "  SELECT DISTINCT q.node\n"
                f"  FROM {pname} AS q\n"
                f"  WHERE q.state IN ({states})"
            )
        self.ctes.append(f"b{k}({', '.join(cols)}) AS (\n{sql}\n)")

    # -- where clause ---------------------------------------------------------

    def operand_fragment(self, operand: PathOperand, *, atoms: bool):
        """``(tables, conds, target)`` for a path operand inside EXISTS.

        ``atoms=True`` additionally joins ``oem_atom`` and targets its
        ``(kind, value)`` pair -- complex objects drop out of the join
        exactly as the native ``_COMPLEX`` marker drops out of
        comparisons.
        """
        seed = self.seed_expr(operand.base, "b")
        tables: list[str] = []
        conds: list[str] = []
        if operand.path is None:
            target = seed
        else:
            steps = chain_steps(operand.path)
            if steps is None:
                final = f"b{len(self.columns) - 1}"
                if operand.base in self.columns:
                    col = f"c{self.columns[operand.base]}"
                    seeds_sql = f"SELECT DISTINCT {col} AS seed FROM {final}"
                else:
                    seeds_sql = f"SELECT {seed} AS seed"
                wname = self.pair_cte(operand.path, seeds_sql)
                walias = self.fresh("x")
                tables.append(f"{wname} AS {walias}")
                conds.append(f"{walias}.seed = {seed}")
                target = f"{walias}.node"
            else:
                name_steps = [_resolve_names(p, self.vocab) for p in steps]
                target = seed
                for names in name_steps:
                    if names is not None and not names:
                        return None  # provably empty target set
                    alias = self.fresh("x")
                    tables.append(f"oem_edge AS {alias}")
                    conds.append(f"{alias}.src = {target}")
                    if names is not None:
                        conds.append(_label_clause(f"{alias}.label", names))
                    target = f"{alias}.dst"
        if not atoms:
            return tables, conds, target
        aalias = self.fresh("x")
        tables.append(f"oem_atom AS {aalias}")
        conds.append(f"{aalias}.oid = {target}")
        return tables, conds, f"{aalias}.kind, {aalias}.value"

    def value_exprs(self, operand, *, frags):
        """The ``kind, value`` SQL of an operand; literals bind params."""
        if isinstance(operand, LiteralOperand):
            kind, stored = _literal_pair(operand.value)
            self.params.extend((kind, stored))
            return "?, ?"
        frag = self.operand_fragment(operand, atoms=True)
        if frag is None:
            return None
        tables, conds, pair = frag
        frags.append((tables, conds))
        return pair

    def exists_sql(self, frags, extra: "str | None" = None) -> str:
        tables = [t for ts, _ in frags for t in ts]
        conds = [c for _, cs in frags for c in cs]
        if extra is not None:
            conds.append(extra)
        if not tables:
            # both operands literal-or-direct with no joins: bare boolean
            return f"({' AND '.join(conds)})" if conds else "1"
        sql = f"EXISTS (SELECT 1 FROM {', '.join(tables)}"
        if conds:
            sql += f" WHERE {' AND '.join(conds)}"
        return sql + ")"

    def predicate_sql(self, predicate) -> str:
        if isinstance(predicate, BoolOp):
            op = "AND" if predicate.op == "and" else "OR"
            return (
                f"({self.predicate_sql(predicate.left)} {op} "
                f"{self.predicate_sql(predicate.right)})"
            )
        if isinstance(predicate, NotOp):
            return f"NOT {self.predicate_sql(predicate.inner)}"
        if isinstance(predicate, ExistsPredicate):
            frag = self.operand_fragment(predicate.operand, atoms=False)
            if frag is None:
                return "0"
            tables, conds, _target = frag
            if not tables:
                return "1"  # a bound alias always exists
            return self.exists_sql([(tables, conds)])
        if isinstance(predicate, LikePredicate):
            if isinstance(predicate.operand, LiteralOperand):
                value = predicate.operand.value
                return "1" if like_value(value, predicate.pattern) else "0"
            mark = len(self.params)
            frags: list = []
            pair = self.value_exprs(predicate.operand, frags=frags)
            if pair is None:
                del self.params[mark:]  # drop params bound before the fold
                return "0"
            self.params.append(predicate.pattern)
            return self.exists_sql(frags, f"lorel_like({pair}, ?)")
        if isinstance(predicate, Compare):
            left, op, right = predicate.left, predicate.op, predicate.right
            if isinstance(left, LiteralOperand) and isinstance(
                right, LiteralOperand
            ):
                return (
                    "1" if compare_values(left.value, op, right.value) else "0"
                )
            mark = len(self.params)
            frags = []
            lpair = self.value_exprs(left, frags=frags)
            rpair = self.value_exprs(right, frags=frags)
            if lpair is None or rpair is None:
                # a provably-empty operand folds the whole comparison to
                # false; any literal params bound meanwhile must go too,
                # or text and parameter list disagree
                del self.params[mark:]
                return "0"
            cmp = f"lorel_cmp({lpair}, {_quote(op)}, {rpair})"
            return self.exists_sql(frags, cmp)
        raise NotCompilable("predicate", f"unknown predicate {predicate!r}")

    # -- assembly -------------------------------------------------------------

    def compile(self) -> CompiledQuery:
        if not self.query.from_clauses:
            raise NotCompilable("no-from", "query has no from clauses")
        self.compile_clauses()
        where_sql = None
        if self.query.where is not None:
            where_sql = self.predicate_sql(self.query.where)
        aliases = list(self.columns)
        info: dict = {"aliases": aliases, "clauses": len(aliases)}
        if self.empty is not None:
            info["empty"] = self.empty
            return CompiledQuery("SELECT 0 AS c0 WHERE 0", (), "lorel", info)
        cols = ", ".join(f"c{i}" for i in range(len(aliases)))
        final = f"b{len(aliases) - 1}"
        sql = "WITH RECURSIVE\n"
        sql += ",\n".join(self.ctes + self.post_ctes)
        sql += f"\nSELECT {cols} FROM {final} AS b"
        if where_sql is not None:
            sql += f"\nWHERE {where_sql}"
        sql += f"\nORDER BY {cols}"
        return CompiledQuery(sql, tuple(self.params), "lorel", info)


def compile_lorel(
    query: LorelQuery, db: "OemDatabase", db_name: str = "DB"
) -> CompiledQuery:
    """Compile a Lorel query's from/where core to one SQL statement.

    Executing it yields the binding environments as rows (one column
    per alias, in clause order, sorted lexicographically -- the native
    enumeration order); pass them to
    :func:`repro.lorel.construct_answer` for the answer database.
    """
    return _LorelCompiler(query, db, db_name).compile()
