"""Join-graph construction and greedy cost-based join ordering.

A compiled chain query is an N-way self-join of the edge table; the
order those joins are written in *is* the physical plan, because the
compiler emits ``CROSS JOIN`` (which sqlite documents as a manual
override: it never reorders across one).  Ordering is the classic
greedy heuristic over a join graph -- start from the cheapest relation,
then repeatedly take the cheapest relation *connected* to what is
already joined (never a Cartesian product while a connected choice
exists).  Costs are estimated rows from
:class:`~repro.planner.GraphStatistics` label frequencies, the same
numbers the Lorel clause reorder uses, so both optimizers rank work
with one ruler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["JoinNode", "JoinGraph", "greedy_order"]


@dataclass(frozen=True)
class JoinNode:
    """One relation occurrence: its alias and estimated row count."""

    name: str
    cost: float


@dataclass
class JoinGraph:
    """Nodes plus connectivity (an edge = a usable join predicate)."""

    nodes: list[JoinNode] = field(default_factory=list)
    edges: set[frozenset[str]] = field(default_factory=set)

    def add_node(self, name: str, cost: float) -> None:
        self.nodes.append(JoinNode(name, cost))

    def connect(self, a: str, b: str) -> None:
        self.edges.add(frozenset((a, b)))

    def connected(self, name: str, chosen: "set[str]") -> bool:
        return any(frozenset((name, other)) in self.edges for other in chosen)


def greedy_order(graph: JoinGraph) -> list[str]:
    """The greedy join order: cheapest first, stay connected.

    Ties break by declaration order (the ``nodes`` list), which keeps
    the emitted SQL -- and therefore the pinned ``.sql`` goldens --
    deterministic for equal statistics.
    """
    remaining = list(graph.nodes)
    if not remaining:
        return []
    first = min(remaining, key=lambda n: n.cost)
    order = [first.name]
    chosen = {first.name}
    remaining.remove(first)
    while remaining:
        connected = [n for n in remaining if graph.connected(n.name, chosen)]
        pool = connected if connected else remaining
        best = min(pool, key=lambda n: n.cost)
        order.append(best.name)
        chosen.add(best.name)
        remaining.remove(best)
    return order
