"""The typed compilation failure of the SQL backend.

The backend's safety contract is *refuse, never approximate*: any
pattern or query it cannot lower into SQL with exactly the native
engine's semantics raises :class:`NotCompilable` at compile time, and
the routing layers fall back to the native kernel.  The fuzz suite in
``tests/sqlbackend`` generates adversarial patterns and asserts exactly
this dichotomy -- either both engines agree, or the SQL engine raised
:class:`NotCompilable` before producing a single row.
"""

from __future__ import annotations

__all__ = ["NotCompilable"]


class NotCompilable(ValueError):
    """A query outside the SQL-compilable fragment.

    ``reason`` is a stable, machine-checkable slug (``vocabulary``,
    ``dfa-too-large``, ``base``, ``compare``...); the message carries
    the human detail.  Raised during compilation only: once a
    :class:`~repro.sqlbackend.compiler.CompiledQuery` exists, execution
    cannot fail for expressiveness reasons.
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        self.reason = reason
        super().__init__(f"{reason}: {detail}" if detail else reason)
