"""Lowering root-origin path-regex queries to SQL (the paper's option 1).

Three compilation shapes, tried in order of decreasing structure:

* **wide** -- the query's fixed path ends inside a record region, so the
  answer is a scan of the DataGuide-derived wide tables (structured
  speed for the structured part of the data);
* **chain** -- the regex is a concatenation of single-label steps, which
  becomes an N-way self-join of ``edge`` in a greedy cost-based order
  (:mod:`~repro.sqlbackend.joins`), joined with ``CROSS JOIN`` so the
  textual order *is* the physical plan;
* **automaton** -- anything with closure operators materializes its
  :class:`~repro.automata.dfa.LazyDfa` over the snapshot's finite label
  vocabulary into a ``dfa(s, lid, t)`` values table and runs a
  ``WITH RECURSIVE`` fixpoint (``UNION``, not ``UNION ALL``: the
  set-semantics dedup is what terminates on cyclic data).

Every label predicate is resolved *in Python* against the interned
vocabulary into literal ``lid`` sets -- sqlite never evaluates a glob or
a type test, so the two engines cannot disagree on predicate semantics.
Queries outside the fragment (oversized IN-lists, DFA blow-ups, huge
extents) raise :class:`~repro.sqlbackend.errors.NotCompilable` and the
caller falls back to the native kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..automata.nfa import build_nfa
from ..automata.dfa import LazyDfa
from ..automata.regex import (
    AltRE,
    AtomRE,
    ConcatRE,
    EpsilonRE,
    LabelPredicate,
    PathRegex,
)
from ..relational.encode import _atom_kind
from ..unql.optimizer import fixed_path_of
from .errors import NotCompilable
from .joins import JoinGraph, greedy_order

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.frozen import FrozenGraph
    from ..planner.stats import GraphStatistics
    from ..schema.dataguide import DataGuide
    from .encode import WideCatalog

__all__ = [
    "CompiledQuery",
    "MAX_IN_LIST",
    "MAX_DFA_STATES",
    "MAX_DFA_TRANSITIONS",
    "MAX_WIDE_EXTENT",
    "chain_steps",
    "resolve_step",
    "compile_chain",
    "compile_automaton",
    "compile_wide",
    "compile_rpq",
]

#: Largest literal ``IN (...)`` list the compiler will emit.
MAX_IN_LIST = 512
#: Materialized-DFA caps: states and (state, lid, state) transitions.
MAX_DFA_STATES = 64
MAX_DFA_TRANSITIONS = 4096
#: Largest DataGuide extent inlined into a wide-table scan.
MAX_WIDE_EXTENT = 256


@dataclass
class CompiledQuery:
    """An executable SQL plan: text, parameters, and provenance.

    ``kind`` is ``"wide"``, ``"chain"`` or ``"automaton"``; ``info``
    carries compile-time facts (join order, DFA size, extent size) that
    :meth:`~repro.planner.QueryPlanner.describe` and the ``.sql``
    goldens surface.
    """

    sql: str
    params: tuple = ()
    kind: str = "chain"
    info: dict = field(default_factory=dict)


_EMPTY_SQL = "SELECT 0 AS node WHERE 0"


def _empty(kind: str, why: str) -> CompiledQuery:
    return CompiledQuery(_EMPTY_SQL, (), kind, {"empty": why})


def _in_clause(expr: str, values: "list[int]") -> str:
    if len(values) == 1:
        return f"{expr} = {values[0]}"
    return f"{expr} IN ({', '.join(str(v) for v in sorted(values))})"


# ---------------------------------------------------------------------------
# Step normalization: is the regex a plain concatenation of single steps?


def _single_step(regex: PathRegex) -> "list[LabelPredicate] | None":
    """The predicate union a one-label regex matches, else ``None``."""
    if isinstance(regex, AtomRE):
        return [regex.predicate]
    if isinstance(regex, AltRE):
        left = _single_step(regex.left)
        right = _single_step(regex.right)
        if left is None or right is None:
            return None
        return left + right
    return None


def chain_steps(regex: PathRegex) -> "list[list[LabelPredicate]] | None":
    """Flatten a concat-of-atoms regex into per-step predicate lists.

    ``None`` when the regex needs an automaton (closure operators,
    alternation across multi-step branches, optional parts).
    """
    steps: list[list[LabelPredicate]] = []
    stack = [regex]
    while stack:
        node = stack.pop()
        if isinstance(node, ConcatRE):
            stack.append(node.left)  # popped after right: reverse order
            stack.append(node.right)
            continue
        if isinstance(node, EpsilonRE):
            continue
        preds = _single_step(node)
        if preds is None:
            return None
        steps.append(preds)
    steps.reverse()
    return steps


def resolve_step(
    preds: "list[LabelPredicate]", labels_seq
) -> "list[int] | None":
    """The lids a step's predicates match, resolved over the vocabulary.

    ``None`` means unconstrained (every label matches -- no SQL filter
    needed); an oversized constrained set raises :class:`NotCompilable`.
    """
    matched = [
        lid
        for lid, label in enumerate(labels_seq)
        if any(p.matches(label) for p in preds)
    ]
    if len(matched) == len(labels_seq) and matched:
        return None
    if len(matched) > MAX_IN_LIST:
        raise NotCompilable(
            "vocabulary",
            f"step matches {len(matched)} labels (cap {MAX_IN_LIST})",
        )
    return matched


# ---------------------------------------------------------------------------
# Chain compilation.


def compile_chain(
    lid_steps: "list[list[int] | None]",
    root: int,
    stats: "GraphStatistics",
    labels_seq,
) -> CompiledQuery:
    """An N-way self-join of ``edge``, ordered by the greedy heuristic."""
    if not lid_steps:
        # The regex matches only the empty path: the answer is the root.
        return CompiledQuery(
            f"SELECT {root} AS node", (), "chain", {"steps": 0}
        )
    for i, lids in enumerate(lid_steps):
        if lids is not None and not lids:
            return _empty("chain", f"step {i} matches no label")

    graph = JoinGraph()
    for i, lids in enumerate(lid_steps):
        if lids is None:
            cost = float(stats.num_edges)
        else:
            cost = float(sum(stats.count(labels_seq[lid]) for lid in lids))
        if i == 0:
            # Seeded by the root constant: selectivity 1/num_nodes.
            cost = max(1.0, cost) / max(1, stats.num_nodes)
        graph.add_node(f"e{i}", cost)
        if i:
            graph.connect(f"e{i - 1}", f"e{i}")
    order = greedy_order(graph)

    conds = [f"e0.src = {root}"]
    for i, lids in enumerate(lid_steps):
        if lids is not None:
            conds.append(_in_clause(f"e{i}.lid", lids))
        if i:
            conds.append(f"e{i}.src = e{i - 1}.dst")
    from_sql = "\nCROSS JOIN ".join(f"edge AS {name}" for name in order)
    last = len(lid_steps) - 1
    sql = (
        f"SELECT DISTINCT e{last}.dst AS node\n"
        f"FROM {from_sql}\n"
        f"WHERE {chr(10).join(f'  AND {c}' for c in conds)[6:]}\n"
        f"ORDER BY node"
    )
    return CompiledQuery(
        sql, (), "chain", {"steps": len(lid_steps), "join_order": order}
    )


# ---------------------------------------------------------------------------
# Automaton compilation.


def _materialize_dfa(regex: PathRegex, labels_seq):
    """BFS the lazy DFA over the finite vocabulary; caps enforced."""
    dfa = LazyDfa(build_nfa(regex))
    transitions: list[tuple[int, int, int]] = []
    seen = {dfa.start}
    queue = [dfa.start]
    while queue:
        state = queue.pop(0)
        for lid, label in enumerate(labels_seq):
            nxt = dfa.step(state, label)
            if dfa.is_dead(nxt):
                continue
            transitions.append((state, lid, nxt))
            if len(transitions) > MAX_DFA_TRANSITIONS:
                raise NotCompilable(
                    "dfa-too-large",
                    f"more than {MAX_DFA_TRANSITIONS} transitions",
                )
            if nxt not in seen:
                seen.add(nxt)
                if len(seen) > MAX_DFA_STATES:
                    raise NotCompilable(
                        "dfa-too-large",
                        f"more than {MAX_DFA_STATES} states",
                    )
                queue.append(nxt)
    accepting = sorted(s for s in seen if dfa.is_accepting(s))
    return dfa.start, transitions, accepting, len(seen)


def compile_automaton(
    regex: PathRegex, root: int, labels_seq
) -> CompiledQuery:
    """A recursive-CTE fixpoint over the materialized product automaton."""
    start, transitions, accepting, num_states = _materialize_dfa(
        regex, labels_seq
    )
    if not accepting:
        return _empty("automaton", "no reachable accepting state")
    if transitions:
        values = ",\n    ".join(
            f"({s}, {lid}, {t})" for s, lid, t in transitions
        )
        dfa_sql = f"VALUES\n    {values}"
    else:
        dfa_sql = "SELECT 0, 0, 0 WHERE 0"
    sql = (
        "WITH RECURSIVE\n"
        f"dfa(s, lid, t) AS (\n  {dfa_sql}\n),\n"
        "reach(node, state) AS (\n"
        f"  SELECT {root}, {start}\n"
        "  UNION\n"
        "  SELECT e.dst, d.t\n"
        "  FROM reach AS r\n"
        "  JOIN dfa AS d ON d.s = r.state\n"
        "  JOIN edge AS e ON e.src = r.node AND e.lid = d.lid\n"
        ")\n"
        "SELECT DISTINCT node FROM reach\n"
        f"WHERE {_in_clause('state', accepting)}\n"
        "ORDER BY node"
    )
    return CompiledQuery(
        sql,
        (),
        "automaton",
        {"dfa_states": num_states, "dfa_transitions": len(transitions)},
    )


# ---------------------------------------------------------------------------
# Wide-table compilation.


def compile_wide(
    regex: PathRegex,
    guide: "DataGuide | None",
    catalog: "WideCatalog | None",
) -> "CompiledQuery | None":
    """Answer a fixed-path query from the wide tables, when sound.

    The fixed path splits as ``prefix . member [. attr [. value]]``; the
    prefix resolves through the DataGuide to a collection extent, and
    the split is usable only when every extent node's *member* region is
    record-shaped (:meth:`WideCatalog.covers`).  Returns ``None`` when
    no split applies -- the caller falls through to chain/automaton
    compilation, never to a wrong answer.
    """
    if guide is None or catalog is None:
        return None
    fixed = fixed_path_of(regex)
    if not fixed:
        return None
    for tail_len in (1, 2, 3):
        if len(fixed) < tail_len:
            break
        split = len(fixed) - tail_len
        member = fixed[split]
        if not member.is_symbol:
            continue
        if tail_len >= 2 and not fixed[split + 1].is_symbol:
            continue
        if tail_len == 3 and not fixed[split + 2].is_base:
            continue
        extent = guide.target_set(fixed[:split])
        if not extent:
            return _empty("wide", "prefix unreachable")
        if len(extent) > MAX_WIDE_EXTENT:
            continue
        member_name = str(member.value)
        if not catalog.covers(extent, member_name):
            continue
        colls = _in_clause("m.coll", sorted(extent))
        info = {"tail": tail_len, "extent": len(extent)}
        if tail_len == 1:
            sql = (
                "SELECT DISTINCT m.rec AS node\n"
                "FROM wide_member AS m\n"
                f"WHERE m.member = ? AND {colls}\n"
                "ORDER BY node"
            )
            return CompiledQuery(sql, (member_name,), "wide", info)
        attr_name = str(fixed[split + 1].value)
        if tail_len == 2:
            sql = (
                "SELECT DISTINCT w.vnode AS node\n"
                "FROM wide_member AS m\n"
                "JOIN wide_attr AS w ON w.rec = m.rec AND w.attr = ?\n"
                f"WHERE m.member = ? AND {colls}\n"
                "ORDER BY node"
            )
            return CompiledQuery(sql, (attr_name, member_name), "wide", info)
        value = fixed[split + 2].value
        kind = _atom_kind(value)
        stored = int(value) if isinstance(value, bool) else value
        sql = (
            "SELECT DISTINCT w.leaf AS node\n"
            "FROM wide_member AS m\n"
            "JOIN wide_attr AS w ON w.rec = m.rec AND w.attr = ?\n"
            "  AND w.kind = ? AND w.value = ?\n"
            f"WHERE m.member = ? AND {colls}\n"
            "ORDER BY node"
        )
        return CompiledQuery(
            sql, (attr_name, kind, stored, member_name), "wide", info
        )
    return None


# ---------------------------------------------------------------------------
# Top-level entry.


def compile_rpq(
    fg: "FrozenGraph",
    regex: PathRegex,
    stats: "GraphStatistics",
    *,
    guide: "DataGuide | None" = None,
    catalog: "WideCatalog | None" = None,
) -> CompiledQuery:
    """Compile a root-origin path-regex query against a snapshot.

    Tries wide, then chain, then automaton; raises
    :class:`NotCompilable` when the query is outside the SQL fragment.
    """
    compiled = compile_wide(regex, guide, catalog)
    if compiled is not None:
        return compiled
    steps = chain_steps(regex)
    if steps is not None:
        lid_steps = [resolve_step(preds, fg.labels_seq) for preds in steps]
        return compile_chain(lid_steps, fg.root, stats, fg.labels_seq)
    return compile_automaton(regex, fg.root, fg.labels_seq)
