"""Partitioning a graph into distributed sites.

Section 4: "in [35] it is shown how an analysis of the query, combined with
some segmentation of the graph into local 'sites', can be used to decompose
a query into independent, parallel sub-queries" (Suciu, VLDB '96).

A :class:`DistributedGraph` assigns every node to exactly one site.  Edges
whose endpoints live on different sites are *cross edges*: following one
costs a message in the decomposed evaluation, and the *input nodes* of a
site (targets of cross edges, plus the root's site entry) are where
sub-queries start.  Two partitioning strategies are provided:

* ``hash``  -- round-robin by node id: simple, and adversarial for
  locality (many cross edges), the worst case for decomposition;
* ``bfs``   -- contiguous BFS blocks: the locality a real web-site
  segmentation would have, few cross edges.

The richer strategies of :mod:`~repro.distributed.partition` (``label``,
``greedy``) are also accepted by name; they partition the frozen snapshot
and translate positions back to node ids, so the simulated runtime can be
driven by the same assignments the parallel runtime measures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..core.frozen import FrozenGraph
from ..core.graph import Edge, Graph

__all__ = ["DistributedGraph", "partition_graph"]


@dataclass
class DistributedGraph:
    """A graph plus a node -> site assignment."""

    graph: Graph
    site_of: dict[int, int]
    num_sites: int
    #: per site: nodes assigned to it
    members: list[set[int]] = field(default_factory=list)
    _frozen: "FrozenGraph | None" = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.members:
            self.members = [set() for _ in range(self.num_sites)]
            for node, site in self.site_of.items():
                self.members[site].add(node)

    def frozen(self) -> FrozenGraph:
        """A cached CSR snapshot of the underlying graph.

        The site assignment and the snapshot both describe the graph as
        it stood at partition time -- mutating the graph invalidates the
        partition itself and requires re-partitioning -- so caching the
        snapshot on the partition is safe, and lets every decomposed
        query over one partition share the frozen fast path.
        """
        if self._frozen is None:
            self._frozen = self.graph.freeze()
        return self._frozen

    def site_edges(self, site: int) -> list[Edge]:
        """All edges whose source lives on ``site``."""
        return [
            e for n in self.members[site] for e in self.graph.edges_from(n)
        ]

    def cross_edges(self) -> list[Edge]:
        """Edges that leave their source's site (each costs a message)."""
        return [
            e
            for n in self.graph.reachable()
            for e in self.graph.edges_from(n)
            if self.site_of[e.src] != self.site_of[e.dst]
        ]

    def input_nodes(self, site: int) -> set[int]:
        """Targets of cross edges into ``site`` (plus the root if local)."""
        inputs = {
            e.dst
            for e in self.cross_edges()
            if self.site_of[e.dst] == site
        }
        if self.site_of[self.graph.root] == site:
            inputs.add(self.graph.root)
        return inputs

    def without_sites(self, dead: "set[int] | frozenset[int]") -> Graph:
        """The graph as seen when the given sites are unreachable.

        Nodes on dead sites keep their identity (their *existence* is
        known to whoever holds an edge pointing at them) but lose all
        outgoing edges: nothing beyond a dead site can be traversed.
        This is the reference semantics ("oracle") for partial-result
        evaluation under site failure -- a resilient evaluation with
        sites ``dead`` permanently down must return exactly the answer a
        centralized evaluation returns over ``without_sites(dead)``.
        """
        for site in dead:
            if not 0 <= site < self.num_sites:
                raise ValueError(f"no such site {site}")
        g = Graph()
        mapping: dict[int, int] = {}
        reach = self.graph.reachable()
        for node in sorted(reach):
            mapping[node] = g.new_node()
        for node in sorted(reach):
            if self.site_of[node] in dead:
                continue
            for edge in self.graph.edges_from(node):
                g.add_edge(mapping[node], edge.label, mapping[edge.dst])
        g.set_root(mapping[self.graph.root])
        return g

    def locality(self) -> float:
        """Fraction of reachable edges that stay within one site."""
        total = 0
        local = 0
        for n in self.graph.reachable():
            for e in self.graph.edges_from(n):
                total += 1
                if self.site_of[e.src] == self.site_of[e.dst]:
                    local += 1
        return local / total if total else 1.0


def partition_graph(
    graph: Graph, num_sites: int, strategy: str = "bfs"
) -> DistributedGraph:
    """Assign every reachable node to one of ``num_sites`` sites."""
    if num_sites < 1:
        raise ValueError("need at least one site")
    reach = graph.reachable()
    site_of: dict[int, int] = {}
    if strategy == "hash":
        for i, node in enumerate(sorted(reach)):
            site_of[node] = i % num_sites
    elif strategy == "bfs":
        order: list[int] = []
        seen = {graph.root}
        queue = deque([graph.root])
        while queue:
            node = queue.popleft()
            order.append(node)
            for edge in graph.edges_from(node):
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    queue.append(edge.dst)
        block = max(1, (len(order) + num_sites - 1) // num_sites)
        for i, node in enumerate(order):
            site_of[node] = min(i // block, num_sites - 1)
    else:
        from .partition import PARTITION_STRATEGIES, build_partition

        if strategy not in PARTITION_STRATEGIES:
            raise ValueError(f"unknown partition strategy {strategy!r}")
        fg = graph.freeze()
        part = build_partition(fg, num_sites, strategy)
        # the snapshot covers every node; keep the assignment scoped to
        # the reachable set like the in-place strategies above
        for pos, node in enumerate(fg.node_ids):
            if node in reach:
                site_of[node] = part.site_of[pos]
        dist = DistributedGraph(graph, site_of, num_sites)
        dist._frozen = fg
        return dist
    return DistributedGraph(graph, site_of, num_sites)
