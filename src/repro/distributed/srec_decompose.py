"""Decomposed structural recursion (section 4, the heart of [35]).

Suciu's VLDB '96 result is about *structural recursion*, not just path
queries: because the bulk semantics of :func:`repro.unql.sstruct.srec`
touches each input edge exactly once and independently, the template-
instantiation phase is embarrassingly parallel across sites -- each site
transforms its local edges with no communication at all, and only the
epsilon-elimination (gluing) phase needs the sites' outputs together.

:func:`distributed_srec` runs exactly that schedule over a
:class:`~repro.distributed.sites.DistributedGraph` and accounts the work:
per-site template work (parallel) plus the sequential gluing cost.  The
result is bisimilar to centralized :func:`~repro.unql.sstruct.srec`
(tested), and the speedup of the parallel phase approaches the site count
-- experiment E5b.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.graph import Graph
from ..resilience import Completeness
from ..unql.sstruct import REC_MARKER, RecursionBody, SubtreeView
from .sites import DistributedGraph

__all__ = ["SrecStats", "distributed_srec", "distributed_srec_resilient"]


@dataclass
class SrecStats:
    """Work accounting for one decomposed recursion."""

    per_site_edges: list[int] = field(default_factory=list)
    glue_edges: int = 0

    @property
    def parallel_work(self) -> int:
        """Edges transformed by the busiest site (the parallel makespan)."""
        return max(self.per_site_edges) if self.per_site_edges else 0

    @property
    def total_work(self) -> int:
        return sum(self.per_site_edges)

    @property
    def speedup(self) -> float:
        if not self.parallel_work:
            return 1.0
        return self.total_work / self.parallel_work


def _srec_over_sites(
    dist: DistributedGraph, body: RecursionBody, runtime=None
) -> tuple[Graph, SrecStats, "Completeness"]:
    """The shared schedule; ``runtime`` (a :class:`~repro.distributed.
    decompose.SiteRuntime`) guards each site's template phase when given."""
    graph = dist.graph
    stats = SrecStats()
    out = Graph()
    reach = graph.reachable()
    out_node = {node: out.new_node() for node in sorted(reach)}
    out.set_root(out_node[graph.root])
    eps: dict[int, list[int]] = {}

    def add_eps(src: int, dst: int) -> None:
        eps.setdefault(src, []).append(dst)

    for site in range(dist.num_sites):
        local = [
            edge
            for node in sorted(dist.members[site] & reach)
            for edge in graph.edges_from(node)
        ]
        if runtime is not None and local and not runtime.deliver(site, len(local)):
            # the site is unreachable: its edges transform nowhere, and the
            # loss is reported; its nodes survive as leaves of the skeleton
            stats.per_site_edges.append(0)
            continue
        for edge in local:
            template = body(edge.label, SubtreeView(graph, edge.dst))
            t_reach = template.reachable()
            mapping = {t: out.new_node() for t in sorted(t_reach)}
            for t_node in sorted(t_reach):
                for t_edge in template.edges_from(t_node):
                    if t_edge.label == REC_MARKER:
                        add_eps(mapping[t_node], out_node[edge.dst])
                    else:
                        out.add_edge(
                            mapping[t_node], t_edge.label, mapping[t_edge.dst]
                        )
            add_eps(out_node[edge.src], mapping[template.root])
        stats.per_site_edges.append(len(local))

    # phase 2: the shared gluing pass
    from ..unql.sstruct import _eliminate_epsilon

    glued = _eliminate_epsilon(out, eps)
    stats.glue_edges = glued.num_edges
    report = runtime.completeness() if runtime is not None else Completeness()
    return glued, stats, report


def distributed_srec(
    dist: DistributedGraph, body: RecursionBody
) -> tuple[Graph, SrecStats]:
    """Evaluate ``srec(body)`` with per-site parallel template phases.

    Phase 1 (parallel, no communication): every site instantiates the
    template for each of its local edges, producing output fragments that
    refer to the shared ``out(node)`` skeleton.
    Phase 2 (sequential): epsilon elimination over the union of all
    fragments -- the only step that sees data from more than one site.
    """
    glued, stats, _ = _srec_over_sites(dist, body)
    return glued, stats


def distributed_srec_resilient(
    dist: DistributedGraph,
    body: RecursionBody,
    *,
    injector=None,
    policy=None,
    failure_threshold: int = 3,
    cooldown: float = 60.0,
    clock=None,
    events=None,
) -> tuple[Graph, SrecStats, Completeness]:
    """:func:`distributed_srec` that survives site failures.

    Each site's (otherwise communication-free) template phase starts
    with one guarded dispatch through a per-site circuit breaker; a site
    that ultimately cannot be reached contributes no fragments -- its
    nodes remain as edgeless leaves in the output skeleton -- and the
    loss is reported in the :class:`~repro.resilience.Completeness`
    report.  For edge-local bodies (the decomposition assumption of
    [35]) the degraded output is bisimilar to centralized ``srec`` over
    ``dist.without_sites(dead)``.

    Returns ``(output graph, work stats, completeness report)``.
    """
    from .decompose import SiteRuntime

    runtime = SiteRuntime(
        dist,
        injector=injector,
        policy=policy,
        failure_threshold=failure_threshold,
        cooldown=cooldown,
        clock=clock,
        events=events,
    )
    return _srec_over_sites(dist, body, runtime)
