"""Pluggable partitioning strategies with balance/cut-size accounting.

Section 4's decomposition scheme is agnostic about *how* the graph was
segmented into sites -- Suciu's analysis works for any node -> site map --
but the map's quality decides the message volume: every cross edge a
traversal follows costs one boundary configuration.  This module supplies
three strategies over a :class:`~repro.core.frozen.FrozenGraph` snapshot:

* ``hash``   -- position modulo ``num_sites``.  Perfectly balanced,
  locality-blind; the adversarial baseline every other strategy is
  measured against.
* ``label``  -- label-locality clustering: nodes are grouped by their
  dominant out-edge label and the groups are bin-packed onto sites
  largest-first.  This is the predicate-partitioning idiom (all ``cite``
  edges hang off nodes in one place); it wins when label usage is
  region-correlated, as in per-collection exports.
* ``greedy`` -- METIS-style streaming edge-cut minimization (linear
  deterministic greedy): nodes arrive in snapshot position order -- the
  order the crawl/load emitted them, where neighborhoods are contiguous
  -- and each is placed on the site holding most of its already-placed
  neighbors, damped by a fill factor so no site exceeds its capacity.
  One pass, no global matrix, and on clustered graphs (host-locality web
  crawls) the cut is a fraction of the hash cut -- the property the
  hypothesis suite pins.

Every strategy emits a :class:`Partition`: a flat ``pos -> site`` table
(an ``array('q')`` indexed by CSR position, ready to ride a shared-memory
segment next to the CSR vectors) plus a :class:`PartitionStats` report of
balance and cut size, so benchmarks can correlate strategy choice with
message volume without re-deriving the accounting.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from math import ceil
from typing import Callable

from ..core.frozen import FrozenGraph

__all__ = [
    "Partition",
    "PartitionStats",
    "PARTITION_STRATEGIES",
    "build_partition",
]


@dataclass(frozen=True)
class PartitionStats:
    """Balance and cut-size accounting for one partition.

    ``sizes`` counts nodes per site and ``edge_sizes`` counts owned
    edges per site (an edge is owned by its source's site, so the edge
    counts always sum to ``num_edges`` -- every edge is assigned exactly
    once).  ``cut_edges`` is the number of edges whose target lives on a
    different site; each one followed at query time becomes a message.
    """

    num_sites: int
    num_nodes: int
    num_edges: int
    cut_edges: int
    sizes: tuple[int, ...]
    edge_sizes: tuple[int, ...]

    @property
    def balance(self) -> float:
        """Largest site size over the ideal size (1.0 = perfect)."""
        if self.num_nodes == 0:
            return 1.0
        ideal = self.num_nodes / self.num_sites
        return max(self.sizes) / ideal

    @property
    def cut_fraction(self) -> float:
        """Fraction of edges that cross sites (0.0 = fully local)."""
        return self.cut_edges / self.num_edges if self.num_edges else 0.0

    @property
    def locality(self) -> float:
        """Fraction of edges that stay within one site."""
        return 1.0 - self.cut_fraction


@dataclass(frozen=True)
class Partition:
    """A ``pos -> site`` assignment over one frozen snapshot.

    ``site_of`` is indexed by CSR *position* (not node id), which makes
    it directly packable as a shared-memory extra next to the CSR
    vectors; :meth:`site_of_node` translates when callers hold node ids.
    """

    num_sites: int
    strategy: str
    site_of: array = field(repr=False)
    stats: PartitionStats

    def site_of_node(self, fg: FrozenGraph, node: int) -> int:
        return self.site_of[fg._pos(node)]

    def members(self) -> list[list[int]]:
        """Per site: the CSR positions assigned to it."""
        out: list[list[int]] = [[] for _ in range(self.num_sites)]
        for pos, site in enumerate(self.site_of):
            out[site].append(pos)
        return out


def _compute_stats(
    fg: FrozenGraph, site_of: array, num_sites: int
) -> PartitionStats:
    n = fg.num_nodes
    sizes = [0] * num_sites
    for site in site_of:
        sizes[site] += 1
    edge_sizes = [0] * num_sites
    cut = 0
    offsets, targets, index = fg.offsets, fg.targets, fg.index
    for pos in range(n):
        site = site_of[pos]
        begin, end = offsets[pos], offsets[pos + 1]
        edge_sizes[site] += end - begin
        for i in range(begin, end):
            dst = targets[i]
            dst_pos = dst if index is None else index[dst]
            if site_of[dst_pos] != site:
                cut += 1
    return PartitionStats(
        num_sites=num_sites,
        num_nodes=n,
        num_edges=fg.num_edges,
        cut_edges=cut,
        sizes=tuple(sizes),
        edge_sizes=tuple(edge_sizes),
    )


def _partition_hash(fg: FrozenGraph, num_sites: int) -> array:
    return array("q", (pos % num_sites for pos in range(fg.num_nodes)))


def _partition_label(fg: FrozenGraph, num_sites: int) -> array:
    """Group by dominant out-label, bin-pack groups largest-first."""
    offsets, label_ids = fg.offsets, fg.label_ids
    n = fg.num_nodes
    # dominant out-label per node (-1 for sinks): the label of most of
    # its out-edges, lowest label id winning ties for determinism
    groups: dict[int, list[int]] = {}
    counts: dict[int, int] = {}
    for pos in range(n):
        begin, end = offsets[pos], offsets[pos + 1]
        if begin == end:
            groups.setdefault(-1, []).append(pos)
            continue
        counts.clear()
        for i in range(begin, end):
            lid = label_ids[i]
            counts[lid] = counts.get(lid, 0) + 1
        best = min(counts, key=lambda lid: (-counts[lid], lid))
        groups.setdefault(best, []).append(pos)
    site_of = array("q", bytes(8 * n))
    loads = [0] * num_sites
    # largest group first onto the lightest site; a group bigger than
    # the ideal share is split so one hot label cannot starve the rest
    cap = max(1, ceil(n / num_sites))
    order = sorted(groups.items(), key=lambda kv: (-len(kv[1]), kv[0]))
    for _lid, members in order:
        for start in range(0, len(members), cap):
            chunk = members[start : start + cap]
            site = min(range(num_sites), key=lambda s: (loads[s], s))
            loads[site] += len(chunk)
            for pos in chunk:
                site_of[pos] = site
    return site_of


def _partition_greedy(fg: FrozenGraph, num_sites: int) -> array:
    """Linear deterministic greedy (streaming METIS-style edge cut).

    Nodes stream in snapshot position order and each placement maximizes
    ``affinity * (1 - size / cap)`` where affinity counts already-placed
    neighbors (out- and in-, via one precomputed reverse pass) on the
    candidate site.  ``cap`` is the balanced share plus 10% slack, so
    balance stays bounded while the damping still prefers emptier sites
    on ties.

    Position order matters: it is the order the loader emitted nodes, so
    neighborhoods (a crawl's host blocks, an export's collections) are
    contiguous runs and each node usually sees a placed neighbor.  A BFS
    order from the root is actively bad here -- a hub root fans out to
    every cluster at depth one, interleaving all of them before any has
    enough placed mass to attract its members.
    """
    offsets, targets, index = fg.offsets, fg.targets, fg.index
    n = fg.num_nodes
    if n == 0:
        return array("q")

    def pos_of(node: int) -> int:
        return node if index is None else index[node]

    # reverse adjacency once, so affinity sees in-neighbors too: on a
    # crawl most host-internal structure is one-directional and
    # out-edges alone would miss half of it
    rev_off = array("q", bytes(8 * (n + 1)))
    for i in range(fg.num_edges):
        rev_off[pos_of(targets[i]) + 1] += 1
    for pos in range(n):
        rev_off[pos + 1] += rev_off[pos]
    rev_src = array("q", bytes(8 * fg.num_edges))
    cursor = array("q", rev_off[:-1])
    for pos in range(n):
        for i in range(offsets[pos], offsets[pos + 1]):
            dst_pos = pos_of(targets[i])
            rev_src[cursor[dst_pos]] = pos
            cursor[dst_pos] += 1

    cap = max(1, ceil(n / num_sites * 1.1))
    site_of = array("q", [-1]) * n
    loads = [0] * num_sites
    affinity = [0] * num_sites
    for pos in range(n):
        for s in range(num_sites):
            affinity[s] = 0
        for i in range(offsets[pos], offsets[pos + 1]):
            s = site_of[pos_of(targets[i])]
            if s >= 0:
                affinity[s] += 1
        for i in range(rev_off[pos], rev_off[pos + 1]):
            s = site_of[rev_src[i]]
            if s >= 0:
                affinity[s] += 1
        best, best_score = 0, float("-inf")
        for s in range(num_sites):
            load = loads[s]
            if load >= cap:
                continue
            score = affinity[s] * (1.0 - load / cap)
            # break score ties toward the lighter site, then lower id
            if score > best_score or (
                score == best_score and load < loads[best]
            ):
                best, best_score = s, score
        site_of[pos] = best
        loads[best] += 1
    return site_of


PARTITION_STRATEGIES: dict[str, Callable[[FrozenGraph, int], array]] = {
    "hash": _partition_hash,
    "label": _partition_label,
    "greedy": _partition_greedy,
}


def build_partition(
    fg: FrozenGraph, num_sites: int, strategy: str = "greedy"
) -> Partition:
    """Partition a frozen snapshot into ``num_sites`` sites.

    ``strategy`` names an entry of :data:`PARTITION_STRATEGIES`.  The
    result is deterministic for a given snapshot (no randomness in any
    strategy), so two processes partitioning the same shared segment
    agree without communicating.
    """
    if num_sites < 1:
        raise ValueError("need at least one site")
    try:
        fn = PARTITION_STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(sorted(PARTITION_STRATEGIES))
        raise ValueError(
            f"unknown partition strategy {strategy!r} (known: {known})"
        ) from None
    site_of = fn(fg, num_sites)
    return Partition(
        num_sites=num_sites,
        strategy=strategy,
        site_of=site_of,
        stats=_compute_stats(fg, site_of, num_sites),
    )
