"""Decomposed query evaluation across sites (section 4, [35]).

The evaluation follows Suciu's scheme in a bulk-synchronous (BSP) rendering:

* each **superstep**, every site expands -- *independently and in
  parallel* -- all the (node, automaton state) configurations currently
  queued at it, traversing only its local edges;
* configurations that cross a site boundary are buffered as messages and
  delivered at the next superstep;
* evaluation ends when no messages remain.

Because a configuration is expanded at most once globally, the *total*
work matches the centralized product construction; the wall-clock
(makespan) is the sum over supersteps of the *maximum* per-site work, so
with a locality-friendly partition the decomposition approaches a
``num_sites``-fold speedup -- the shape experiment E5 reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from ..automata.dfa import LazyDfa
from ..automata.product import compile_rpq, ordered_edge_indices, product_bfs
from ..obs import QueryProfile
from ..resilience import (
    CircuitBreaker,
    Clock,
    Completeness,
    EventLog,
    FailureRecord,
    FaultInjector,
    ResilienceError,
    RetryPolicy,
    SimulatedClock,
    call_with_retry,
)
from .sites import DistributedGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..automata.plan_cache import PlanCache

__all__ = [
    "DistributedStats",
    "distributed_rpq",
    "distributed_rpq_profiled",
    "distributed_rpq_resilient",
    "centralized_work",
    "SiteRuntime",
]


@dataclass
class DistributedStats:
    """Work accounting of one decomposed evaluation."""

    #: work[r][s]: configurations expanded by site s in superstep r
    work: list[list[int]] = field(default_factory=list)
    messages: int = 0
    #: cross-site messages *received* by each site over the whole run
    messages_per_site: list[int] = field(default_factory=list)

    @property
    def supersteps(self) -> int:
        return len(self.work)

    @property
    def total_work(self) -> int:
        return sum(sum(round_work) for round_work in self.work)

    @property
    def makespan(self) -> int:
        """Parallel cost: per superstep, the slowest site gates progress."""
        return sum(max(round_work) if round_work else 0 for round_work in self.work)

    @property
    def speedup(self) -> float:
        """total work / makespan: the parallelism actually extracted."""
        return self.total_work / self.makespan if self.makespan else 1.0


def distributed_rpq(
    dist: DistributedGraph,
    pattern: "str | LazyDfa",
    *,
    plan_cache: "PlanCache | None" = None,
) -> tuple[set[int], DistributedStats]:
    """Evaluate a regular path query by site-parallel decomposition.

    Returns the matched node set (identical to the centralized
    :func:`repro.automata.product.rpq_nodes` -- tested) and the work
    statistics of the BSP execution.

    Each site's local expansion runs on the partition's cached frozen
    snapshot through the label-pruned kernel, scanning edges in
    insertion order -- so the message schedule, per-round work, and
    every other statistic are identical to a plain-graph run; only the
    wall-clock drops.
    """
    dfa = compile_rpq(pattern, plan_cache=plan_cache)
    fg = dist.frozen()
    site_of = dist.site_of
    label_ids, edge_targets = fg.label_ids, fg.targets
    labels_seq, index = fg.labels_seq, fg.index
    stats = DistributedStats(messages_per_site=[0] * dist.num_sites)
    results: set[int] = set()
    seen: set[tuple[int, int]] = set()
    trans: dict[tuple[int, int], int] = {}
    live_cache: dict = {}

    root_site = site_of[fg.root]
    inboxes: list[list[tuple[int, int]]] = [[] for _ in range(dist.num_sites)]
    start = (fg.root, dfa.start)
    inboxes[root_site].append(start)
    seen.add(start)
    if dfa.is_accepting(dfa.start):
        results.add(fg.root)

    while any(inboxes):
        round_work = [0] * dist.num_sites
        outboxes: list[list[tuple[int, int]]] = [[] for _ in range(dist.num_sites)]
        for site in range(dist.num_sites):
            queue = inboxes[site]
            # local expansion: this loop is what runs in parallel per site
            while queue:
                node, state = queue.pop()
                round_work[site] += 1
                pos = node if index is None else index[node]
                for i in ordered_edge_indices(fg, dfa, state, pos, live_cache):
                    lid = label_ids[i]
                    key = (state, lid)
                    nxt_state = trans.get(key)
                    if nxt_state is None:
                        stepped = dfa.step(state, labels_seq[lid])
                        nxt_state = -1 if dfa.is_dead(stepped) else stepped
                        trans[key] = nxt_state
                    if nxt_state < 0:
                        continue
                    dst = edge_targets[i]
                    config = (dst, nxt_state)
                    if config in seen:
                        continue
                    seen.add(config)
                    if dfa.is_accepting(nxt_state):
                        results.add(dst)
                    target_site = site_of[dst]
                    if target_site == site:
                        queue.append(config)
                    else:
                        outboxes[target_site].append(config)
                        stats.messages += 1
                        stats.messages_per_site[target_site] += 1
        stats.work.append(round_work)
        inboxes = outboxes
    return results, stats


def distributed_rpq_profiled(
    dist: DistributedGraph, pattern: "str | LazyDfa"
) -> tuple[set[int], DistributedStats, QueryProfile]:
    """:func:`distributed_rpq` plus a :class:`~repro.obs.QueryProfile`.

    The profile carries the BSP observables -- supersteps (rounds) and
    total cross-site messages, with per-site received-message counts in
    ``extras`` -- next to the same traversal counts the centralized
    profiled RPQ reports, so the decomposition's "total work matches
    centralized" claim becomes a per-query assertion.
    """
    dfa = compile_rpq(pattern)
    states_before = dfa.num_materialized_states if isinstance(pattern, LazyDfa) else 0
    results, stats = distributed_rpq(dist, dfa)
    graph = dist.graph
    profile = QueryProfile(
        engine="distributed-rpq",
        query=pattern if isinstance(pattern, str) else "<compiled>",
    )
    # re-derive the explored configs the same way the centralized
    # profiled entry point does (the BSP schedule explores the same set)
    _, seen = product_bfs(graph, dfa, graph.root)
    visited = {config[0] for config in seen}
    profile.product_pairs = len(seen)
    profile.nodes_visited = len(visited)
    profile.edges_expanded = graph.total_out_degree(visited)
    profile.dfa_states = dfa.num_materialized_states - states_before
    profile.results = len(results)
    profile.supersteps = stats.supersteps
    profile.messages = stats.messages
    for site, count in enumerate(stats.messages_per_site):
        profile.extras[f"messages_to_site_{site}"] = count
    return results, stats, profile


class SiteRuntime:
    """Per-site resilience state for one decomposed evaluation.

    Models the client side of [35]'s message protocol when sites can
    fail: delivering a superstep's inbox to a site is one guarded call
    (retried under ``policy``), and each site has its own circuit
    breaker, so a permanently-dead site is contacted at most
    ``failure_threshold`` times before every later delivery fails fast
    without touching the network -- the documented trip bound.

    ``dist`` may be a :class:`~repro.distributed.sites.DistributedGraph`
    or a bare site count: the runtime only needs to know how many
    breakers to build, which is what lets the parallel runtime (whose
    partition lives in a flat position table, not a
    ``DistributedGraph``) reuse the same guarded-delivery protocol.
    """

    def __init__(
        self,
        dist: "DistributedGraph | int",
        *,
        injector: "FaultInjector | None" = None,
        policy: "RetryPolicy | None" = None,
        failure_threshold: int = 3,
        cooldown: float = 60.0,
        clock: "Clock | None" = None,
        events: "EventLog | None" = None,
    ) -> None:
        self.dist = None if isinstance(dist, int) else dist
        self.num_sites = dist if isinstance(dist, int) else dist.num_sites
        self.injector = injector
        self.policy = policy if policy is not None else RetryPolicy(
            max_attempts=3, base_delay=0.01
        )
        self.clock = clock if clock is not None else (
            injector.clock if injector is not None else SimulatedClock()
        )
        self.events = events if events is not None else EventLog(self.clock)
        self.breakers = [
            CircuitBreaker(
                failure_threshold,
                cooldown,
                clock=self.clock,
                key=f"site:{site}",
                events=self.events,
            )
            for site in range(self.num_sites)
        ]
        self.retries = 0
        self.deliveries = 0
        self._failures: list[FailureRecord] = []

    def deliver(self, site: int, payload: int) -> bool:
        """One guarded inbox delivery of ``payload`` work units to ``site``.

        Returns True when the site accepted the delivery; on ultimate
        failure records the lost work and returns False (the partial-
        result contract: degrade, and say so).
        """
        if self.injector is None:
            # nothing can fail without an injector: skip the guarded call
            # so the fault-free path stays within its overhead budget
            self.deliveries += 1
            return True
        attempts_box = [0]

        def contact() -> None:
            attempts_box[0] += 1
            if self.injector is not None:
                self.injector.check(f"site:{site}")

        try:
            _, attempts = call_with_retry(
                contact,
                key=f"site:{site}",
                policy=self.policy,
                breaker=self.breakers[site],
                clock=self.clock,
                events=self.events,
            )
        except ResilienceError as exc:
            self.retries += max(0, attempts_box[0] - 1)
            self._failures.append(
                FailureRecord(
                    kind="site",
                    key=f"site:{site}",
                    attempts=attempts_box[0],
                    error=repr(exc),
                    lost=payload,
                )
            )
            self.events.emit("fallback", key=f"site:{site}", lost=payload)
            return False
        self.retries += attempts - 1
        self.deliveries += 1
        return True

    def completeness(self) -> Completeness:
        return Completeness(
            complete=not self._failures,
            failures=tuple(self._failures),
            retries=self.retries,
            succeeded=self.deliveries,
        )


def distributed_rpq_resilient(
    dist: DistributedGraph,
    pattern: "str | LazyDfa",
    *,
    injector: "FaultInjector | None" = None,
    policy: "RetryPolicy | None" = None,
    failure_threshold: int = 3,
    cooldown: float = 60.0,
    clock: "Clock | None" = None,
    events: "EventLog | None" = None,
    plan_cache: "PlanCache | None" = None,
) -> tuple[set[int], DistributedStats, Completeness]:
    """:func:`distributed_rpq` that survives site failures.

    Identical BSP schedule, but each superstep's inbox delivery to a
    site is one guarded call through that site's :class:`SiteRuntime`
    breaker.  When a delivery ultimately fails, its configurations are
    dropped and reported instead of crashing the query; because RPQ
    answers are monotone in the visible graph, the returned node set is
    a sound lower bound, and with sites permanently down it equals the
    centralized answer over ``dist.without_sites(dead)`` (tested).

    A matched node is recorded by the *sender* (the site that holds the
    edge into it) -- the edge's existence is local knowledge -- so
    targets of cross edges into a dead site still appear in the answer;
    only traversal *beyond* the dead site is lost.

    Returns ``(matched nodes, work stats, completeness report)``.
    """
    dfa = compile_rpq(pattern, plan_cache=plan_cache)
    graph = dist.graph
    runtime = SiteRuntime(
        dist,
        injector=injector,
        policy=policy,
        failure_threshold=failure_threshold,
        cooldown=cooldown,
        clock=clock,
        events=events,
    )
    stats = DistributedStats(messages_per_site=[0] * dist.num_sites)
    results: set[int] = set()
    seen: set[tuple[int, int]] = set()

    root_site = dist.site_of[graph.root]
    inboxes: list[list[tuple[int, int]]] = [[] for _ in range(dist.num_sites)]
    start = (graph.root, dfa.start)
    inboxes[root_site].append(start)
    seen.add(start)
    if dfa.is_accepting(dfa.start):
        results.add(graph.root)

    fg = dist.frozen()
    site_of = dist.site_of
    label_ids, edge_targets = fg.label_ids, fg.targets
    labels_seq, index = fg.labels_seq, fg.index
    trans: dict[tuple[int, int], int] = {}
    live_cache: dict = {}

    while any(inboxes):
        round_work = [0] * dist.num_sites
        outboxes: list[list[tuple[int, int]]] = [[] for _ in range(dist.num_sites)]
        for site in range(dist.num_sites):
            queue = inboxes[site]
            if not queue:
                continue
            if not runtime.deliver(site, len(queue)):
                continue  # degraded: this site's queued work is lost, and reported
            while queue:
                node, state = queue.pop()
                round_work[site] += 1
                pos = node if index is None else index[node]
                for i in ordered_edge_indices(fg, dfa, state, pos, live_cache):
                    lid = label_ids[i]
                    key = (state, lid)
                    nxt_state = trans.get(key)
                    if nxt_state is None:
                        stepped = dfa.step(state, labels_seq[lid])
                        nxt_state = -1 if dfa.is_dead(stepped) else stepped
                        trans[key] = nxt_state
                    if nxt_state < 0:
                        continue
                    dst = edge_targets[i]
                    config = (dst, nxt_state)
                    if config in seen:
                        continue
                    seen.add(config)
                    if dfa.is_accepting(nxt_state):
                        results.add(dst)
                    target_site = site_of[dst]
                    if target_site == site:
                        queue.append(config)
                    else:
                        outboxes[target_site].append(config)
                        stats.messages += 1
                        stats.messages_per_site[target_site] += 1
        stats.work.append(round_work)
        inboxes = outboxes
    return results, stats, runtime.completeness()


def centralized_work(dist: DistributedGraph, pattern: "str | LazyDfa") -> int:
    """Configurations a single-site evaluation expands (the E5 baseline)."""
    dfa = compile_rpq(pattern)
    graph = dist.graph
    seen = {(graph.root, dfa.start)}
    stack = [(graph.root, dfa.start)]
    expanded = 0
    while stack:
        node, state = stack.pop()
        expanded += 1
        for edge in graph.edges_from(node):
            nxt_state = dfa.step(state, edge.label)
            if dfa.is_dead(nxt_state):
                continue
            config = (edge.dst, nxt_state)
            if config not in seen:
                seen.add(config)
                stack.append(config)
    return expanded
