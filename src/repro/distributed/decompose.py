"""Decomposed query evaluation across sites (section 4, [35]).

The evaluation follows Suciu's scheme in a bulk-synchronous (BSP) rendering:

* each **superstep**, every site expands -- *independently and in
  parallel* -- all the (node, automaton state) configurations currently
  queued at it, traversing only its local edges;
* configurations that cross a site boundary are buffered as messages and
  delivered at the next superstep;
* evaluation ends when no messages remain.

Because a configuration is expanded at most once globally, the *total*
work matches the centralized product construction; the wall-clock
(makespan) is the sum over supersteps of the *maximum* per-site work, so
with a locality-friendly partition the decomposition approaches a
``num_sites``-fold speedup -- the shape experiment E5 reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..automata.dfa import LazyDfa
from ..automata.product import compile_rpq
from .sites import DistributedGraph

__all__ = ["DistributedStats", "distributed_rpq", "centralized_work"]


@dataclass
class DistributedStats:
    """Work accounting of one decomposed evaluation."""

    #: work[r][s]: configurations expanded by site s in superstep r
    work: list[list[int]] = field(default_factory=list)
    messages: int = 0

    @property
    def supersteps(self) -> int:
        return len(self.work)

    @property
    def total_work(self) -> int:
        return sum(sum(round_work) for round_work in self.work)

    @property
    def makespan(self) -> int:
        """Parallel cost: per superstep, the slowest site gates progress."""
        return sum(max(round_work) if round_work else 0 for round_work in self.work)

    @property
    def speedup(self) -> float:
        """total work / makespan: the parallelism actually extracted."""
        return self.total_work / self.makespan if self.makespan else 1.0


def distributed_rpq(
    dist: DistributedGraph, pattern: "str | LazyDfa"
) -> tuple[set[int], DistributedStats]:
    """Evaluate a regular path query by site-parallel decomposition.

    Returns the matched node set (identical to the centralized
    :func:`repro.automata.product.rpq_nodes` -- tested) and the work
    statistics of the BSP execution.
    """
    dfa = compile_rpq(pattern)
    graph = dist.graph
    stats = DistributedStats()
    results: set[int] = set()
    seen: set[tuple[int, int]] = set()

    root_site = dist.site_of[graph.root]
    inboxes: list[list[tuple[int, int]]] = [[] for _ in range(dist.num_sites)]
    start = (graph.root, dfa.start)
    inboxes[root_site].append(start)
    seen.add(start)
    if dfa.is_accepting(dfa.start):
        results.add(graph.root)

    while any(inboxes):
        round_work = [0] * dist.num_sites
        outboxes: list[list[tuple[int, int]]] = [[] for _ in range(dist.num_sites)]
        for site in range(dist.num_sites):
            queue = inboxes[site]
            # local expansion: this loop is what runs in parallel per site
            while queue:
                node, state = queue.pop()
                round_work[site] += 1
                for edge in graph.edges_from(node):
                    nxt_state = dfa.step(state, edge.label)
                    if dfa.is_dead(nxt_state):
                        continue
                    config = (edge.dst, nxt_state)
                    if config in seen:
                        continue
                    seen.add(config)
                    if dfa.is_accepting(nxt_state):
                        results.add(edge.dst)
                    target_site = dist.site_of[edge.dst]
                    if target_site == site:
                        queue.append(config)
                    else:
                        outboxes[target_site].append(config)
                        stats.messages += 1
        stats.work.append(round_work)
        inboxes = outboxes
    return results, stats


def centralized_work(dist: DistributedGraph, pattern: "str | LazyDfa") -> int:
    """Configurations a single-site evaluation expands (the E5 baseline)."""
    dfa = compile_rpq(pattern)
    graph = dist.graph
    seen = {(graph.root, dfa.start)}
    stack = [(graph.root, dfa.start)]
    expanded = 0
    while stack:
        node, state = stack.pop()
        expanded += 1
        for edge in graph.edges_from(node):
            nxt_state = dfa.step(state, edge.label)
            if dfa.is_dead(nxt_state):
                continue
            config = (edge.dst, nxt_state)
            if config not in seen:
                seen.add(config)
                stack.append(config)
    return expanded
