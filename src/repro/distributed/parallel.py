"""True parallel distributed RPQ: OS-process sites over one shared snapshot.

:mod:`~repro.distributed.decompose` *simulates* Suciu's BSP decomposition
in one process; this module runs it for real.  Sites are OS processes
(spawn-started, so the runtime is fork-safety-agnostic) that attach the
same shared-memory CSR snapshot (:mod:`repro.core.shared`) zero-copy and
expand their local ``(node, DFA state)`` frontiers against it; boundary
configurations travel as batched ``array('q')`` messages through the
parent, which plays the network.

The protocol per query:

1. the parent compiles the pattern to a :class:`~repro.automata.product.
   DensePlan` -- a deterministic, picklable DFA over the snapshot's
   interned alphabet, so every worker agrees what state ``3`` means and
   a configuration travels as the single int ``pos * num_states + state``;
2. each **superstep**, the parent delivers every pending batch through
   its site's :class:`~repro.distributed.decompose.SiteRuntime` circuit
   breaker (the same guarded-delivery protocol as the simulation; a dead
   site's work is dropped and reported, never crashes the query), then
   workers drain their frontiers *asynchronously* -- local expansion is
   depth-first to exhaustion, only cross-site edges wait for the barrier;
3. matches are recorded by the **sender** of a cross edge (the edge's
   existence is local knowledge), which is exactly what makes the answer
   under dead sites equal the centralized answer over
   ``without_sites(dead)`` -- the oracle the tests pin;
4. between supersteps the parent checkpoints an optional cooperative
   control (deadline / budget / cancellation), returning the matches so
   far as a sound lower bound when interrupted.

Per-site dedup differs from the simulation in one honest way: each site
knows only the configurations *it* has seen or sent, so two sites can
both message the same boundary configuration (the owner expands it
once).  The simulation's global ``seen`` set is knowledge no real
distributed system has; message counts here are what the wire would
carry.

``inline=True`` runs the same driver, worker kernels, and breaker
protocol without processes or shared memory -- the hypothesis equality
suite uses it (hundreds of examples per run; process spawn would
dominate), and it doubles as the single-process reference for the
speedup accounting in experiment E17.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..automata.product import (
    DensePlan,
    _INTERRUPT_KINDS,
    compile_dense,
    interrupted_completeness,
)
from ..core.frozen import FrozenGraph
from ..obs.metrics import MetricsRegistry
from ..resilience import Completeness, PartialResult, completeness_of
from .decompose import SiteRuntime
from .partition import Partition, build_partition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.shared import SharedGraphDescriptor

__all__ = [
    "PARALLEL_METRICS",
    "ParallelError",
    "ParallelResult",
    "ParallelRpqPool",
    "ParallelStats",
    "SiteWorker",
    "parallel_rpq",
]

#: Process-wide observability for the parallel runtime (``repro stats``).
PARALLEL_METRICS = MetricsRegistry()

#: Seconds the parent waits for a worker's superstep reply before giving up.
DEFAULT_REPLY_TIMEOUT = 120.0


class ParallelError(RuntimeError):
    """The worker pool is unusable (not started, closed, or a worker died)."""


@dataclass
class ParallelStats:
    """BSP observables of one parallel evaluation.

    Mirrors :class:`~repro.distributed.decompose.DistributedStats` --
    ``work[r][s]`` counts edges scanned by site ``s`` in superstep ``r``
    -- plus the straggler ratio the real runtime makes measurable: per
    superstep, the slowest site's work over the mean across active
    sites, averaged over supersteps.  1.0 means perfectly even rounds;
    large values mean the barrier waits on one hot site.
    """

    num_sites: int = 0
    strategy: str = ""
    work: list[list[int]] = field(default_factory=list)
    messages: int = 0
    messages_per_site: list[int] = field(default_factory=list)

    @property
    def supersteps(self) -> int:
        return len(self.work)

    @property
    def total_work(self) -> int:
        return sum(sum(round_work) for round_work in self.work)

    @property
    def makespan(self) -> int:
        return sum(max(round_work) if round_work else 0 for round_work in self.work)

    @property
    def straggler_ratio(self) -> float:
        ratios = []
        for round_work in self.work:
            active = [w for w in round_work if w > 0]
            if active:
                ratios.append(max(active) * len(active) / sum(active))
        return sum(ratios) / len(ratios) if ratios else 1.0


@dataclass(frozen=True)
class ParallelResult:
    """Matched nodes plus the run's accounting and degradation report."""

    nodes: frozenset[int]
    stats: ParallelStats
    completeness: Completeness

    def as_partial(self) -> "PartialResult[frozenset[int]]":
        return PartialResult(self.nodes, self.completeness)


class SiteWorker:
    """One site's expansion kernel over (a view of) the frozen snapshot.

    Pure compute state -- no queues, no processes -- shared verbatim by
    the worker-process main loop and the inline executor, so both modes
    run byte-for-byte the same kernel.  Configurations are single ints
    (``pos * num_states + state``); ``seen`` holds every config this
    site has expanded *or* sent, which is all the dedup knowledge a real
    site can have.

    The kernel walks the *flattened* per-label partition table
    (``pb_off``/``plid``/``pstart``/``pidx`` -- the same vectors the
    shared segment packs) rather than the raw edge range: one dense
    transition probe per ``(node, label)`` bucket either advances the
    automaton for the whole bucket or skips every edge in it.  That is
    the label pruning the lazy kernel gets from ``live_exact_labels``,
    recovered as pure array arithmetic -- no dict probes, no tuple keys
    -- which is where the single-worker speedup over the centralized
    kernel comes from (experiment E17 quantifies it).
    """

    __slots__ = ("fg", "plan", "site_of", "parts", "site", "seen")

    def __init__(
        self, fg: FrozenGraph, plan: DensePlan, site_of, parts, site: int
    ) -> None:
        self.fg = fg
        self.plan = plan
        self.site_of = site_of
        self.parts = parts  # (pb_off, plid, pstart, pidx) flat vectors
        self.site = site
        self.seen: set[int] = set()

    def expand(self, batch) -> tuple[list[int], dict[int, array], int]:
        """Drain ``batch`` plus everything locally reachable from it.

        Returns ``(matched node ids, outbox per destination site, edges
        scanned)``.  Local expansion is depth-first to exhaustion --
        only cross-site successors stop and wait for the next superstep.
        Received configurations are *not* re-recorded as matches (their
        sender already did); only configurations first discovered here
        are.  ``ops`` counts edges in buckets the automaton could
        advance on -- the label-pruned work actually done, matching the
        budget contract of :class:`~repro.automata.product.RpqStepper`.
        """
        fg, plan = self.fg, self.plan
        targets = fg.targets
        index = fg.index
        pb_off, plid, pstart, pidx = self.parts
        trans, accepting = plan.trans, plan.accepting
        num_states, num_labels = plan.num_states, plan.num_labels
        site, site_of, seen = self.site, self.site_of, self.seen
        matched: list[int] = []
        outbox: dict[int, array] = {}
        ops = 0
        stack: list[int] = []
        for enc in batch:
            if enc not in seen:
                seen.add(enc)
                stack.append(enc)
        dense = index is None
        while stack:
            enc = stack.pop()
            pos, state = divmod(enc, num_states)
            bucket0, bucket1 = pb_off[pos], pb_off[pos + 1]
            if bucket0 == bucket1:
                continue
            base = state * num_labels
            for j in range(bucket0, bucket1):
                nxt = trans[base + plid[j]]
                if nxt < 0:
                    continue
                accept = accepting[nxt]
                span0, span1 = pstart[j], pstart[j + 1]
                ops += span1 - span0
                if dense:  # positions ARE node ids: the hot bench path
                    for i in range(span0, span1):
                        dst = targets[pidx[i]]
                        dst_enc = dst * num_states + nxt
                        if dst_enc in seen:
                            continue
                        seen.add(dst_enc)
                        if accept:
                            matched.append(dst)
                        dst_site = site_of[dst]
                        if dst_site == site:
                            stack.append(dst_enc)
                        else:
                            box = outbox.get(dst_site)
                            if box is None:
                                box = outbox[dst_site] = array("q")
                            box.append(dst_enc)
                else:
                    for i in range(span0, span1):
                        dst = targets[pidx[i]]
                        dst_pos = index[dst]
                        dst_enc = dst_pos * num_states + nxt
                        if dst_enc in seen:
                            continue
                        seen.add(dst_enc)
                        if accept:
                            matched.append(dst)
                        dst_site = site_of[dst_pos]
                        if dst_site == site:
                            stack.append(dst_enc)
                        else:
                            box = outbox.get(dst_site)
                            if box is None:
                                box = outbox[dst_site] = array("q")
                            box.append(dst_enc)
        return matched, outbox, ops

    def reset(self) -> None:
        self.seen = set()


def _worker_main(
    site: int,
    descriptor: "SharedGraphDescriptor",
    conn,
) -> None:
    """Worker-process entry point: attach, serve supersteps, detach.

    Spawn-safe by construction -- everything arrives pickled (the
    descriptor, dense plans, batches) and the CSR bytes come from the
    shared segment.  Transport is one duplex :func:`multiprocessing.Pipe`
    per worker rather than queues: ``Connection.send`` pickles and
    writes *synchronously*, where ``mp.Queue`` hands off to a feeder
    thread whose wake-up is at the mercy of the GIL switch interval --
    on a loaded core that is milliseconds of latency per message, which
    at supersteps x sites messages per query dominated the whole run.

    One :class:`SiteWorker` lives per in-flight query id; ``finish``
    drops it, ``stop`` exits the loop.  The attached segment is closed
    on the way out no matter how the loop ends.
    """
    from ..core.shared import attach

    snapshot = attach(descriptor)
    try:
        fg = snapshot.graph
        site_of = snapshot.field("site_of")
        parts = tuple(
            snapshot.field(name) for name in ("pb_off", "plid", "pstart", "pidx")
        )
        workers: dict[int, SiteWorker] = {}
        conn.send(("ready", site))
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "stop":
                break
            if kind == "query":
                _, qid, plan = message
                workers[qid] = SiteWorker(fg, plan, site_of, parts, site)
            elif kind == "step":
                _, qid, batch = message
                try:
                    matched, outbox, ops = workers[qid].expand(batch)
                except Exception as exc:  # surface, don't hang the barrier
                    conn.send(("error", site, qid, repr(exc)))
                else:
                    conn.send(("done", site, qid, matched, outbox, ops))
            elif kind == "finish":
                workers.pop(message[1], None)
    except EOFError:  # parent vanished; nothing to reply to
        pass
    finally:
        snapshot.close()


class ParallelRpqPool:
    """A persistent pool of site processes over one shared snapshot.

    Construction partitions the snapshot; :meth:`start` packs it into
    shared memory (with the ``pos -> site`` table riding along as an
    extra vector) and spawns one worker per site.  The pool then serves
    any number of queries -- plans compile per pattern, workers persist
    -- until :meth:`close` tears the processes and the segment down.
    Use as a context manager so the segment cannot outlive the run.

    ``inline=True`` serves the same queries with in-process
    :class:`SiteWorker`\\ s: no processes, no shared memory, identical
    results and statistics.  That is the mode for property tests and for
    measuring the decomposition overhead itself.
    """

    def __init__(
        self,
        fg: FrozenGraph,
        num_workers: int,
        *,
        strategy: str = "greedy",
        partition: "Partition | None" = None,
        inline: bool = False,
        reply_timeout: float = DEFAULT_REPLY_TIMEOUT,
    ) -> None:
        if partition is not None and partition.num_sites != num_workers:
            raise ValueError(
                f"partition has {partition.num_sites} sites, pool wants {num_workers}"
            )
        self.fg = fg
        self.num_workers = num_workers
        self.partition = (
            partition
            if partition is not None
            else build_partition(fg, num_workers, strategy)
        )
        self.inline = inline
        self.reply_timeout = reply_timeout
        self._snapshot = None
        self._processes: list = []
        self._conns: list = []
        self._inline_workers: "list[SiteWorker] | None" = None
        self._started = False
        self._closed = False
        self._next_qid = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ParallelRpqPool":
        if self._started:
            return self
        if self._closed:
            raise ParallelError("pool is closed")
        if self.inline:
            from ..core.shared import flatten_partitions

            parts = flatten_partitions(self.fg)  # once, shared by all sites
            self._inline_workers = [
                SiteWorker(self.fg, None, self.partition.site_of, parts, site)  # type: ignore[arg-type]
                for site in range(self.num_workers)
            ]
        else:
            import multiprocessing as mp

            from ..core.shared import pack

            ctx = mp.get_context("spawn")
            self._snapshot = pack(
                self.fg, extras={"site_of": self.partition.site_of}
            )
            try:
                for site in range(self.num_workers):
                    parent_conn, child_conn = ctx.Pipe()
                    proc = ctx.Process(
                        target=_worker_main,
                        args=(site, self._snapshot.descriptor, child_conn),
                        daemon=True,
                    )
                    proc.start()
                    child_conn.close()  # the worker holds its end now
                    self._conns.append(parent_conn)
                    self._processes.append(proc)
                # Block until every worker has booted, attached the
                # segment, and said so.  Spawned interpreters take
                # hundreds of milliseconds each to import; without the
                # handshake that boot cost lands on the first query and
                # masquerades as runtime slowness.
                for site, conn in enumerate(self._conns):
                    if not conn.poll(max(self.reply_timeout, 60.0)):
                        raise ParallelError(f"worker {site} never came up")
                    try:
                        message = conn.recv()
                    except EOFError:
                        raise ParallelError(
                            f"worker {site} died during startup"
                        ) from None
                    if message[0] != "ready":  # pragma: no cover - protocol bug
                        raise ParallelError(
                            f"worker {site} sent {message[0]!r} before ready"
                        )
            except BaseException:
                self._teardown()
                raise
        self._started = True
        PARALLEL_METRICS.gauge("parallel_workers").set(self.num_workers)
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._started = False
        self._inline_workers = None
        self._teardown()

    def _teardown(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):  # pragma: no cover
                pass
        for proc in self._processes:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._conns = []
        self._processes = []
        if self._snapshot is not None:
            self._snapshot.close()
            self._snapshot.unlink()
            self._snapshot = None

    def __enter__(self) -> "ParallelRpqPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- query driving -----------------------------------------------------

    def run(
        self,
        pattern,
        start: int | None = None,
        *,
        control=None,
        runtime: "SiteRuntime | None" = None,
        max_states: int = 4096,
    ) -> ParallelResult:
        """Evaluate one RPQ across the pool's sites.

        ``control`` follows the :meth:`~repro.automata.product.RpqStepper.
        run` contract (``checkpoint(ops)`` between supersteps, raising a
        typed resilience error to interrupt -- the interrupt becomes a
        partial result, never an exception).  ``runtime`` supplies the
        per-site circuit breakers and fault injector; by default a
        fault-free :class:`~repro.distributed.decompose.SiteRuntime` is
        built per query.  Results are identical to the centralized
        :func:`~repro.automata.product.rpq_nodes` over the same snapshot
        (the property the equality suite pins).
        """
        if not self._started:
            raise ParallelError("pool not started (use start() or a with block)")
        fg = self.fg
        plan = compile_dense(pattern, fg.labels_seq, max_states=max_states)
        if runtime is None:
            runtime = SiteRuntime(self.num_workers)
        qid = self._next_qid
        self._next_qid += 1

        stats = ParallelStats(
            num_sites=self.num_workers,
            strategy=self.partition.strategy,
            messages_per_site=[0] * self.num_workers,
        )
        results: set[int] = set()
        origin = fg.root if start is None else start
        origin_pos = fg._pos(origin)
        if plan.is_accepting(plan.start):
            results.add(origin)
        pending: dict[int, array] = {
            self.partition.site_of[origin_pos]: array(
                "q", [origin_pos * plan.num_states + plan.start]
            )
        }
        # boundary configs delivered once already count as messages for
        # every round after the first (the initial config is not a message)
        first_round = True

        if self.inline:
            workers = self._inline_workers
            assert workers is not None
            for worker in workers:
                worker.plan = plan  # type: ignore[attr-defined]
                worker.reset()
        else:
            for conn in self._conns:
                conn.send(("query", qid, plan))

        interrupted: Exception | None = None
        try:
            if control is not None:
                control.checkpoint(0)
            while pending:
                delivered: list[tuple[int, array]] = []
                for site in sorted(pending):
                    batch = pending[site]
                    if not first_round:
                        stats.messages += len(batch)
                        stats.messages_per_site[site] += len(batch)
                    if runtime.deliver(site, len(batch)):
                        delivered.append((site, batch))
                first_round = False
                round_work = [0] * self.num_workers
                if self.inline:
                    replies = [
                        (site, *self._inline_workers[site].expand(batch))
                        for site, batch in delivered
                    ]
                else:
                    for site, batch in delivered:
                        self._conns[site].send(("step", qid, batch))
                    replies = [
                        self._recv_reply(site, qid) for site, _ in delivered
                    ]
                pending = {}
                for site, matched, outbox, ops in replies:
                    results.update(matched)
                    round_work[site] = ops
                    for dst_site, box in outbox.items():
                        existing = pending.get(dst_site)
                        if existing is None:
                            pending[dst_site] = box
                        else:
                            existing.extend(box)
                if any(round_work) or delivered:
                    stats.work.append(round_work)
                if control is not None:
                    control.checkpoint(sum(round_work))
        except tuple(_INTERRUPT_KINDS) as exc:
            interrupted = exc
        finally:
            if not self.inline:
                for conn in self._conns:
                    conn.send(("finish", qid))

        PARALLEL_METRICS.counter("parallel_queries").inc()
        PARALLEL_METRICS.counter("parallel_supersteps").inc(stats.supersteps)
        PARALLEL_METRICS.counter("parallel_messages").inc(stats.messages)
        PARALLEL_METRICS.counter("parallel_work").inc(stats.total_work)
        PARALLEL_METRICS.gauge("parallel_straggler_ratio").set(stats.straggler_ratio)

        completeness = runtime.completeness()
        if interrupted is not None:
            lost = sum(len(batch) for batch in pending.values())
            completeness = Completeness.merge(
                interrupted_completeness(
                    interrupted, getattr(control, "key", "parallel-rpq"), lost
                ),
                completeness,
            )
        else:
            completeness = Completeness.merge(completeness, completeness_of(fg))
        return ParallelResult(
            nodes=frozenset(results), stats=stats, completeness=completeness
        )

    def _recv_reply(self, site: int, qid: int):
        conn = self._conns[site]
        while True:
            if not conn.poll(self.reply_timeout):
                dead = [
                    s
                    for s, proc in enumerate(self._processes)
                    if not proc.is_alive()
                ]
                raise ParallelError(
                    f"no reply from worker {site} within {self.reply_timeout}s"
                    + (f"; dead workers: {dead}" if dead else "")
                )
            try:
                message = conn.recv()
            except EOFError:
                raise ParallelError(f"worker {site} died mid-query") from None
            kind = message[0]
            if kind == "error":
                raise ParallelError(f"worker {site} failed: {message[3]}")
            _, _site, reply_qid, matched, outbox, ops = message
            if reply_qid != qid:  # stale reply from an interrupted query
                continue
            return site, matched, outbox, ops


def parallel_rpq(
    fg: FrozenGraph,
    pattern,
    start: int | None = None,
    *,
    num_workers: int = 4,
    strategy: str = "greedy",
    inline: bool = False,
    control=None,
    runtime: "SiteRuntime | None" = None,
) -> ParallelResult:
    """One-shot convenience: pool up, run one query, tear down.

    For repeated queries build a :class:`ParallelRpqPool` once -- the
    pool amortizes partitioning, the shared-memory pack, and worker
    spawn across queries; this helper pays all three per call.
    """
    with ParallelRpqPool(
        fg, num_workers, strategy=strategy, inline=inline
    ) as pool:
        return pool.run(pattern, start, control=control, runtime=runtime)
