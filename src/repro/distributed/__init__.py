"""Distributed query decomposition (section 4, Suciu VLDB '96)."""

from .decompose import (
    DistributedStats,
    SiteRuntime,
    centralized_work,
    distributed_rpq,
    distributed_rpq_profiled,
    distributed_rpq_resilient,
)
from .sites import DistributedGraph, partition_graph
from .srec_decompose import SrecStats, distributed_srec, distributed_srec_resilient

__all__ = [
    "DistributedGraph",
    "partition_graph",
    "distributed_rpq",
    "distributed_rpq_profiled",
    "distributed_rpq_resilient",
    "distributed_srec",
    "distributed_srec_resilient",
    "centralized_work",
    "DistributedStats",
    "SrecStats",
    "SiteRuntime",
]
