"""Distributed query decomposition (section 4, Suciu VLDB '96).

Two runtimes share one decomposition scheme: :mod:`~repro.distributed.
decompose` simulates the BSP supersteps in-process (the reference the
profiles pin), and :mod:`~repro.distributed.parallel` runs them for real
-- OS-process sites traversing one shared-memory CSR snapshot, partitioned
by the strategies in :mod:`~repro.distributed.partition`.
"""

from .decompose import (
    DistributedStats,
    SiteRuntime,
    centralized_work,
    distributed_rpq,
    distributed_rpq_profiled,
    distributed_rpq_resilient,
)
from .parallel import (
    PARALLEL_METRICS,
    ParallelError,
    ParallelResult,
    ParallelRpqPool,
    ParallelStats,
    parallel_rpq,
)
from .partition import (
    PARTITION_STRATEGIES,
    Partition,
    PartitionStats,
    build_partition,
)
from .sites import DistributedGraph, partition_graph
from .srec_decompose import SrecStats, distributed_srec, distributed_srec_resilient

__all__ = [
    "DistributedGraph",
    "partition_graph",
    "Partition",
    "PartitionStats",
    "PARTITION_STRATEGIES",
    "build_partition",
    "distributed_rpq",
    "distributed_rpq_profiled",
    "distributed_rpq_resilient",
    "distributed_srec",
    "distributed_srec_resilient",
    "centralized_work",
    "DistributedStats",
    "SrecStats",
    "SiteRuntime",
    "ParallelRpqPool",
    "ParallelError",
    "ParallelResult",
    "ParallelStats",
    "parallel_rpq",
    "PARALLEL_METRICS",
]
