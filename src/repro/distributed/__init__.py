"""Distributed query decomposition (section 4, Suciu VLDB '96)."""

from .decompose import DistributedStats, centralized_work, distributed_rpq
from .sites import DistributedGraph, partition_graph

__all__ = [
    "DistributedGraph",
    "partition_graph",
    "distributed_rpq",
    "centralized_work",
    "DistributedStats",
]
