"""Parser for the graph-datalog concrete syntax.

Syntax::

    program  := (rule)*
    rule     := atom ( ':-' bodyitem (',' bodyitem)* )? '.'
    bodyitem := ('not')? atom | term OP term
    atom     := IDENT '(' term (',' term)* ')'
    term     := VARIABLE        -- starts with an uppercase letter or _
              | NUMBER | STRING | lowercase identifier (a constant)

``%`` starts a comment running to end of line.
"""

from __future__ import annotations

from .ast import Atom, Comparison, Const, Program, Rule, Term, Var

__all__ = ["parse_program", "DatalogSyntaxError"]


class DatalogSyntaxError(ValueError):
    """Raised on malformed datalog source."""


_OPS = ("!=", "<=", ">=", "=", "<", ">")


class _P:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def err(self, message: str) -> DatalogSyntaxError:
        line = self.text.count("\n", 0, self.pos) + 1
        return DatalogSyntaxError(f"{message} (line {line})")

    def skip_ws(self) -> None:
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch.isspace():
                self.pos += 1
            elif ch == "%":
                while self.pos < len(self.text) and self.text[self.pos] != "\n":
                    self.pos += 1
            else:
                return

    def peek(self) -> str:
        self.skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def eat(self, token: str) -> None:
        self.skip_ws()
        if self.text[self.pos : self.pos + len(token)] != token:
            raise self.err(f"expected {token!r}")
        self.pos += len(token)

    def try_eat(self, token: str) -> bool:
        self.skip_ws()
        if self.text[self.pos : self.pos + len(token)] == token:
            self.pos += len(token)
            return True
        return False

    def ident(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] == "_"
        ):
            self.pos += 1
        if start == self.pos:
            raise self.err("expected an identifier")
        return self.text[start : self.pos]

    def term(self) -> Term:
        ch = self.peek()
        if ch in "\"'":
            quote = ch
            self.pos += 1
            out = []
            while True:
                if self.pos >= len(self.text):
                    raise self.err("unterminated string")
                c = self.text[self.pos]
                self.pos += 1
                if c == quote:
                    return Const("".join(out))
                if c == "\\" and self.pos < len(self.text):
                    c = self.text[self.pos]
                    self.pos += 1
                out.append(c)
        if ch.isdigit() or ch == "-":
            start = self.pos
            if ch == "-":
                self.pos += 1
            while self.pos < len(self.text):
                c = self.text[self.pos]
                if c.isdigit():
                    self.pos += 1
                elif (
                    c == "."
                    and self.pos + 1 < len(self.text)
                    and self.text[self.pos + 1].isdigit()
                ):
                    # a '.' is part of the number only when digits follow;
                    # otherwise it terminates the rule.
                    self.pos += 1
                else:
                    break
            text = self.text[start : self.pos]
            try:
                return Const(float(text) if "." in text else int(text))
            except ValueError:
                raise self.err(f"bad number {text!r}") from None
        name = self.ident()
        if name[0].isupper() or name[0] == "_":
            return Var(name)
        if name == "true":
            return Const(True)
        if name == "false":
            return Const(False)
        return Const(name)

    def atom(self, negated: bool = False) -> Atom:
        name = self.ident()
        if name[0].isupper():
            raise self.err(f"predicate names must be lowercase, got {name!r}")
        self.eat("(")
        terms = [self.term()]
        while self.try_eat(","):
            terms.append(self.term())
        self.eat(")")
        return Atom(name, tuple(terms), negated)

    def body_item(self):
        self.skip_ws()
        # 'not atom'
        if self.text[self.pos : self.pos + 3] == "not" and (
            self.pos + 3 < len(self.text) and self.text[self.pos + 3].isspace()
        ):
            self.pos += 3
            return self.atom(negated=True)
        # disambiguate atom vs comparison: parse a term; if '(' follows an
        # identifier it was a predicate.
        save = self.pos
        first = self.ident() if self.peek().isalpha() or self.peek() == "_" else None
        if first is not None and self.peek() == "(" and not first[0].isupper():
            self.pos = save
            return self.atom()
        self.pos = save
        left = self.term()
        self.skip_ws()
        for op in _OPS:
            if self.text[self.pos : self.pos + len(op)] == op:
                self.pos += len(op)
                return Comparison(left, op, self.term())
        raise self.err("expected a comparison operator")

    def rule(self) -> Rule:
        head = self.atom()
        if head.negated:
            raise self.err("rule heads cannot be negated")
        if self.try_eat(":-"):
            body = [self.body_item()]
            while self.try_eat(","):
                body.append(self.body_item())
            self.eat(".")
            return Rule(head, tuple(body))
        self.eat(".")
        return Rule(head)

    def program(self) -> Program:
        rules = []
        while True:
            self.skip_ws()
            if self.pos >= len(self.text):
                break
            rules.append(self.rule())
        if not rules:
            raise self.err("empty program")
        return Program(tuple(rules))


def parse_program(text: str) -> Program:
    """Parse datalog source text into a :class:`~repro.datalog.ast.Program`."""
    return _P(text).program()
