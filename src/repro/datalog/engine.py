"""Stratified datalog evaluation: naive and semi-naive.

The engine implements the "graph datalog" strategy of section 3.  It is a
classical bottom-up evaluator:

* **safety check** -- every head variable must be bound by a positive body
  atom; so must every variable in a negated atom or comparison;
* **stratification** -- negation must not occur inside a recursive cycle;
  the strata are computed by fixpoint relaxation over the predicate
  dependency graph;
* **naive evaluation** -- iterate all rules to a fixpoint (kept as the
  baseline for experiment E11);
* **semi-naive evaluation** -- the standard delta optimization: a
  recursive rule only re-fires with at least one delta atom, which is what
  makes unbounded reachability queries linear-ish instead of quadratic.

The EDB for a graph comes from :func:`graph_edb`, giving the
``(node-id, label, node-id)`` relation the paper starts from, with the
label-kind refinement it immediately asks for (complication 1).
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..core.graph import Graph
from .ast import Atom, Comparison, Const, Program, Rule, Term, Var

__all__ = [
    "DatalogError",
    "check_safety",
    "stratify",
    "evaluate",
    "graph_edb",
    "run_on_graph",
]

Facts = dict[str, set[tuple]]


class DatalogError(ValueError):
    """Raised on unsafe or unstratifiable programs."""


# ---------------------------------------------------------------------------
# Safety.


def check_safety(program: Program) -> None:
    """Reject rules whose head/negation/comparison variables are unbound."""
    for rule in program.rules:
        positive_vars: set[str] = set()
        for item in rule.body:
            if isinstance(item, Atom) and not item.negated:
                positive_vars |= item.variables()
        unbound_head = rule.head.variables() - positive_vars
        if unbound_head:
            raise DatalogError(
                f"unsafe rule {rule!r}: head variables {sorted(unbound_head)} "
                "not bound by a positive body atom"
            )
        for item in rule.body:
            if isinstance(item, Atom) and item.negated:
                loose = item.variables() - positive_vars
                if loose:
                    raise DatalogError(
                        f"unsafe rule {rule!r}: negated atom uses unbound "
                        f"variables {sorted(loose)}"
                    )
            if isinstance(item, Comparison):
                loose = item.variables() - positive_vars
                if loose:
                    raise DatalogError(
                        f"unsafe rule {rule!r}: comparison uses unbound "
                        f"variables {sorted(loose)}"
                    )


# ---------------------------------------------------------------------------
# Stratification.


def stratify(program: Program) -> list[set[str]]:
    """Partition the IDB predicates into strata.

    ``stratum[p] >= stratum[q]`` when p depends positively on q and
    ``stratum[p] > stratum[q]`` when negatively; failure to converge means
    negation through recursion, which stratified datalog rejects.
    """
    idb = program.idb_predicates()
    stratum = {p: 0 for p in idb}
    deps: list[tuple[str, str, bool]] = []  # (head, body pred, negated)
    for rule in program.rules:
        for item in rule.body:
            if isinstance(item, Atom) and item.predicate in idb:
                deps.append((rule.head.predicate, item.predicate, item.negated))
    max_rounds = len(idb) * max(len(idb), 1) + 1
    for _ in range(max_rounds):
        changed = False
        for head, body_pred, negated in deps:
            need = stratum[body_pred] + (1 if negated else 0)
            if stratum[head] < need:
                stratum[head] = need
                changed = True
        if not changed:
            break
    else:
        raise DatalogError("program is not stratifiable (negation in a cycle)")
    if any(s > len(idb) for s in stratum.values()):
        raise DatalogError("program is not stratifiable (negation in a cycle)")
    layers: dict[int, set[str]] = {}
    for pred, s in stratum.items():
        layers.setdefault(s, set()).add(pred)
    return [layers[i] for i in sorted(layers)]


# ---------------------------------------------------------------------------
# Evaluation.


def _unify_atom(
    atom: Atom, fact: tuple, env: dict[str, object]
) -> dict[str, object] | None:
    out = env
    copied = False
    for term, value in zip(atom.terms, fact):
        if isinstance(term, Const):
            if term.value != value:
                return None
        else:
            bound = out.get(term.name, _MISSING)
            if bound is _MISSING:
                if not copied:
                    out = dict(out)
                    copied = True
                out[term.name] = value
            elif bound != value:
                return None
    return out if copied else dict(out)


_MISSING = object()


def _resolve(term: Term, env: Mapping[str, object]) -> object:
    if isinstance(term, Const):
        return term.value
    return env[term.name]


def _check_comparison(comp: Comparison, env: Mapping[str, object]) -> bool:
    left = _resolve(comp.left, env)
    right = _resolve(comp.right, env)
    if comp.op == "=":
        return left == right
    if comp.op == "!=":
        return left != right
    if type(left) is not type(right) and not (
        isinstance(left, (int, float)) and isinstance(right, (int, float))
    ):
        return False
    try:
        return {"<": left < right, "<=": left <= right, ">": left > right, ">=": left >= right}[comp.op]
    except TypeError:
        return False


class _PathOracle:
    """Evaluates Graphlog-style ``path(X, "regex", Y)`` builtin atoms.

    [16] (Consens & Mendelzon, Graphlog) extends datalog with regular
    path edges; this oracle answers them with the shared RPQ product,
    memoized per (start node, pattern).
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._frozen = None
        self._cache: dict[tuple[int, str], frozenset[int]] = {}

    def targets(self, start: int, pattern: str) -> frozenset[int]:
        key = (start, pattern)
        cached = self._cache.get(key)
        if cached is None:
            from ..automata.plan_cache import DEFAULT_PLAN_CACHE
            from ..automata.product import rpq_nodes

            if not self._graph.has_node(start):
                cached = frozenset()
            else:
                # freeze once per oracle (one fixpoint evaluation): path
                # atoms fire for many (start, pattern) pairs over the
                # same graph, which is the frozen kernel's sweet spot
                if self._frozen is None:
                    self._frozen = self._graph.freeze()
                cached = frozenset(
                    rpq_nodes(
                        self._frozen, pattern, start=start,
                        plan_cache=DEFAULT_PLAN_CACHE,
                    )
                )
            self._cache[key] = cached
        return cached


def _rule_matches(
    rule: Rule,
    facts: Facts,
    delta: Facts | None,
    delta_position: int | None,
    path_oracle: "_PathOracle | None" = None,
) -> Iterator[tuple]:
    """All head facts derivable from one rule.

    With ``delta_position`` set, the positive atom at that body index draws
    from ``delta`` instead of ``facts`` (semi-naive refinement).
    """

    def walk(index: int, env: dict[str, object]) -> Iterator[dict[str, object]]:
        if index == len(rule.body):
            yield env
            return
        item = rule.body[index]
        if isinstance(item, Comparison):
            if _check_comparison(item, env):
                yield from walk(index + 1, env)
            return
        if (
            isinstance(item, Atom)
            and item.predicate == "path"
            and item.arity == 3
            and isinstance(item.terms[1], Const)
            and not item.negated
        ):
            if path_oracle is None:
                raise DatalogError(
                    "path/3 atoms need a graph: use run_on_graph or pass graph="
                )
            start_term, pattern_term, end_term = item.terms
            if isinstance(start_term, Var) and start_term.name not in env:
                raise DatalogError(
                    f"path/3 needs its start bound: {item!r} in {rule!r}"
                )
            start = _resolve(start_term, env)
            if not isinstance(start, int):
                return
            targets = path_oracle.targets(start, str(pattern_term.value))
            if isinstance(end_term, Const):
                if end_term.value in targets:
                    yield from walk(index + 1, env)
                return
            bound = env.get(end_term.name, _MISSING)
            if bound is not _MISSING:
                if bound in targets:
                    yield from walk(index + 1, env)
                return
            for target in targets:
                extended = dict(env)
                extended[end_term.name] = target
                yield from walk(index + 1, extended)
            return
        if item.negated:
            pool = facts.get(item.predicate, set())
            for fact in pool:
                if _unify_atom(item, fact, env) is not None:
                    return  # a match exists: negation fails
            yield from walk(index + 1, env)
            return
        if delta_position is not None and index == delta_position and delta is not None:
            pool = delta.get(item.predicate, set())
        else:
            pool = facts.get(item.predicate, set())
        for fact in pool:
            extended = _unify_atom(item, fact, env)
            if extended is not None:
                yield from walk(index + 1, extended)

    for env in walk(0, {}):
        yield tuple(_resolve(t, env) for t in rule.head.terms)


def evaluate(
    program: Program,
    edb: Mapping[str, set[tuple]],
    semi_naive: bool = True,
    graph: "Graph | None" = None,
) -> Facts:
    """Bottom-up evaluation; returns all facts (EDB copied + IDB derived).

    With ``graph`` supplied, rule bodies may use the Graphlog-style
    builtin ``path(X, "regex", Y)``: Y ranges over the nodes reachable
    from (bound) X along a path matching the regex.  The predicate name
    ``path`` with a constant pattern is reserved for this builtin.
    """
    check_safety(program)
    strata = stratify(program)
    facts: Facts = {pred: set(rows) for pred, rows in edb.items()}
    idb = program.idb_predicates()
    oracle = _PathOracle(graph) if graph is not None else None
    for layer in strata:
        rules = [r for r in program.rules if r.head.predicate in layer]
        # facts (bodyless rules) seed the layer
        for rule in rules:
            if rule.is_fact:
                if any(isinstance(t, Var) for t in rule.head.terms):
                    raise DatalogError(f"fact {rule!r} contains variables")
                facts.setdefault(rule.head.predicate, set()).add(
                    tuple(t.value for t in rule.head.terms)  # type: ignore[union-attr]
                )
        body_rules = [r for r in rules if not r.is_fact]
        if semi_naive:
            _semi_naive_layer(body_rules, facts, layer, idb, oracle)
        else:
            _naive_layer(body_rules, facts, oracle)
    return facts


def _naive_layer(
    rules: list[Rule], facts: Facts, oracle: "_PathOracle | None" = None
) -> None:
    while True:
        grew = False
        for rule in rules:
            pool = facts.setdefault(rule.head.predicate, set())
            for fact in list(_rule_matches(rule, facts, None, None, oracle)):
                if fact not in pool:
                    pool.add(fact)
                    grew = True
        if not grew:
            return


def _semi_naive_layer(
    rules: list[Rule],
    facts: Facts,
    layer: set[str],
    idb: set[str],
    oracle: "_PathOracle | None" = None,
) -> None:
    # round 0: fire every rule once on the full facts
    delta: Facts = {}
    for rule in rules:
        pool = facts.setdefault(rule.head.predicate, set())
        for fact in list(_rule_matches(rule, facts, None, None, oracle)):
            if fact not in pool:
                pool.add(fact)
                delta.setdefault(rule.head.predicate, set()).add(fact)
    # subsequent rounds: each recursive rule fires once per delta position
    while delta:
        new_delta: Facts = {}
        for rule in rules:
            positions = [
                i
                for i, item in enumerate(rule.body)
                if isinstance(item, Atom)
                and not item.negated
                and item.predicate in layer
            ]
            if not positions:
                continue  # non-recursive in this stratum: already saturated
            pool = facts.setdefault(rule.head.predicate, set())
            for pos in positions:
                item = rule.body[pos]
                if item.predicate not in delta:  # type: ignore[union-attr]
                    continue
                for fact in list(_rule_matches(rule, facts, delta, pos, oracle)):
                    if fact not in pool:
                        pool.add(fact)
                        new_delta.setdefault(rule.head.predicate, set()).add(fact)
        delta = new_delta


# ---------------------------------------------------------------------------
# Graph EDB.


def graph_edb(graph: Graph) -> Facts:
    """The (node-id, label, node-id) encoding as datalog facts.

    Predicates:

    * ``edge(S, L, D)`` -- label *values*;
    * ``edgek(S, K, L, D)`` -- with the kind discriminator (``symbol``,
      ``int``, ``string``, ``real``, ``bool``), answering the paper's
      heterogeneity complication;
    * ``root(R)``, ``node(N)``, ``leaf(N)``.
    """
    facts: Facts = {"edge": set(), "edgek": set(), "root": set(), "node": set(), "leaf": set()}
    reach = graph.reachable()
    facts["root"].add((graph.root,))
    for node in reach:
        facts["node"].add((node,))
        edges = graph.edges_from(node)
        if not edges:
            facts["leaf"].add((node,))
        for e in edges:
            facts["edge"].add((e.src, e.label.value, e.dst))
            facts["edgek"].add((e.src, e.label.kind.value, e.label.value, e.dst))
    return facts


def run_on_graph(
    source: str, graph: Graph, query: str, semi_naive: bool = True
) -> set[tuple]:
    """Parse a program, run it over a graph's EDB, return one predicate.

    >>> from repro.core.builder import from_obj
    >>> g = from_obj({"a": {"b": None}})
    >>> rows = run_on_graph('''
    ...     reach(X) :- root(X).
    ...     reach(Y) :- reach(X), edge(X, L, Y).
    ... ''', g, "reach")
    >>> len(rows) == len(g.reachable())
    True
    """
    from .parser import parse_program

    program = parse_program(source)
    result = evaluate(program, graph_edb(graph), semi_naive=semi_naive, graph=graph)
    return result.get(query, set())
