"""Graph datalog (section 3's recursive-query strategy)."""

from .ast import Atom, Comparison, Const, Program, Rule, Var
from .engine import (
    DatalogError,
    check_safety,
    evaluate,
    graph_edb,
    run_on_graph,
    stratify,
)
from .parser import DatalogSyntaxError, parse_program

__all__ = [
    "Var",
    "Const",
    "Atom",
    "Comparison",
    "Rule",
    "Program",
    "parse_program",
    "DatalogSyntaxError",
    "DatalogError",
    "check_safety",
    "stratify",
    "evaluate",
    "graph_edb",
    "run_on_graph",
]
