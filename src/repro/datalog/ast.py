"""Abstract syntax for graph datalog.

Section 3: "Some forms of unbounded search will require recursive queries,
i.e., a 'graph datalog', and such languages are proposed in [26, 16] for
the web and for hypertext."  The language here is classical datalog with
stratified negation and comparison built-ins, evaluated over an EDB that by
default contains the graph encoding of :mod:`repro.relational.encode`:

* ``edge(Src, Label, Dst)`` -- one fact per graph edge (label values);
* ``root(Node)`` -- the distinguished root;
* ``symbol(L)`` / ``intval(L)`` / ... -- label-kind facts, making the
  tagged union queryable.

Example (all nodes reachable without crossing a ``Movie`` edge)::

    reach(X)  :- root(X).
    reach(Y)  :- reach(X), edge(X, L, Y), L != "Movie".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = ["Var", "Const", "Term", "Atom", "Comparison", "BodyItem", "Rule", "Program"]


@dataclass(frozen=True)
class Var:
    """A variable (capitalized in the concrete syntax)."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant (number, quoted string, or lowercase identifier)."""

    value: object

    def __repr__(self) -> str:
        return repr(self.value)


Term = Union[Var, Const]


@dataclass(frozen=True)
class Atom:
    """``pred(t1, ..., tn)``, possibly negated in a rule body."""

    predicate: str
    terms: tuple[Term, ...]
    negated: bool = False

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> set[str]:
        return {t.name for t in self.terms if isinstance(t, Var)}

    def __repr__(self) -> str:
        inner = ", ".join(map(repr, self.terms))
        prefix = "not " if self.negated else ""
        return f"{prefix}{self.predicate}({inner})"


@dataclass(frozen=True)
class Comparison:
    """A built-in ``t1 op t2`` with op in ``= != < <= > >=``."""

    left: Term
    op: str
    right: Term

    def variables(self) -> set[str]:
        out = set()
        for t in (self.left, self.right):
            if isinstance(t, Var):
                out.add(t.name)
        return out

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


BodyItem = Union[Atom, Comparison]


@dataclass(frozen=True)
class Rule:
    """``head :- body.``; a bodyless rule is a fact."""

    head: Atom
    body: tuple[BodyItem, ...] = ()

    @property
    def is_fact(self) -> bool:
        return not self.body

    def __repr__(self) -> str:
        if self.is_fact:
            return f"{self.head!r}."
        return f"{self.head!r} :- {', '.join(map(repr, self.body))}."


@dataclass(frozen=True)
class Program:
    rules: tuple[Rule, ...]

    def idb_predicates(self) -> set[str]:
        """Predicates defined by some rule head."""
        return {rule.head.predicate for rule in self.rules}

    def __repr__(self) -> str:
        return "\n".join(map(repr, self.rules))
