"""Counters, gauges, and fixed-bucket histograms behind one registry.

The observability layer's numeric surface.  Three deliberately boring
instrument kinds -- the same trio every production metrics system settles
on -- with none of the label-cardinality machinery a hosted system needs:

* :class:`Counter` -- a monotonically increasing count (edges expanded,
  bytes serialized);
* :class:`Gauge` -- a last-write-wins level (current cache size);
* :class:`Histogram` -- observations bucketed against a *fixed* bound
  vector chosen at creation, so two runs of the same workload produce
  identical bucket counts and tests can assert on them exactly.

:class:`MetricsRegistry` is the get-or-create namespace.  Everything is
plain Python ints/floats -- no background threads, no clocks, no I/O --
which is what keeps always-on accounting (the index hit/miss counters,
the storage byte counters) cheap enough to never turn off.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: Default histogram bounds: powers of ten from 1 to 1e6 (operation counts).
DEFAULT_BUCKETS: tuple[float, ...] = (1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0)


class Counter:
    """A monotonically increasing integer count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative: counters only go up)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<counter {self.name}={self.value}>"


class Gauge:
    """A level that can move both ways; reads back the last value set."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += float(delta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<gauge {self.name}={self.value:g}>"


class Histogram:
    """Observations bucketed against a fixed, sorted bound vector.

    Bucket ``i`` counts observations ``<= bounds[i]``; one overflow bucket
    counts the rest.  ``sum(counts) == total`` always (the invariant the
    property tests pin down), and because the bounds never move after
    construction, the same observation stream always yields the same
    bucket counts.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(float(b) for b in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"bucket bounds must be strictly increasing, got {bounds}")
        self.name = name
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation in its bucket."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def bucket_for(self, value: float) -> int:
        """The bucket index a value falls into (last = overflow)."""
        return bisect.bisect_left(self.bounds, value)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<histogram {self.name} n={self.total} mean={self.mean:g}>"


class MetricsRegistry:
    """Get-or-create namespace for counters, gauges, and histograms.

    Asking for the same name twice returns the same instrument; asking for
    a name already registered as a *different* kind is an error (silent
    shadowing would corrupt dashboards).
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_free(self, name: str, own: dict) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if table is not own and name in table:
                raise ValueError(f"{name!r} is already registered as a {kind}")

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        c = self._counters.get(name)
        if c is None:
            self._check_free(name, self._counters)
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        g = self._gauges.get(name)
        if g is None:
            self._check_free(name, self._gauges)
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """The histogram called ``name``, created on first use.

        ``bounds`` only matters on the creating call; later calls must not
        disagree with the registered bound vector.
        """
        h = self._histograms.get(name)
        if h is None:
            self._check_free(name, self._histograms)
            h = self._histograms[name] = Histogram(name, bounds)
        elif tuple(float(b) for b in bounds) != h.bounds and bounds is not DEFAULT_BUCKETS:
            raise ValueError(f"histogram {name!r} already exists with bounds {h.bounds}")
        return h

    def names(self) -> Iterator[str]:
        yield from sorted({*self._counters, *self._gauges, *self._histograms})

    def as_dict(self) -> dict[str, object]:
        """A plain JSON-ready snapshot of every instrument."""
        out: dict[str, object] = {}
        for name, c in sorted(self._counters.items()):
            out[name] = c.value
        for name, g in sorted(self._gauges.items()):
            out[name] = g.value
        for name, h in sorted(self._histograms.items()):
            out[name] = {
                "bounds": list(h.bounds),
                "counts": list(h.counts),
                "total": h.total,
                "sum": h.sum,
            }
        return out

    def reset(self) -> None:
        """Zero every instrument in place (tests snapshot across sections)."""
        for c in self._counters.values():
            c.value = 0
        for g in self._gauges.values():
            g.value = 0.0
        for h in self._histograms.values():
            h.counts = [0] * (len(h.bounds) + 1)
            h.total = 0
            h.sum = 0.0
