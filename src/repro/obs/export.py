"""JSON export of profiles, metrics, and span trees.

One stable serialization for everything the observability layer records,
used three ways:

* the ``profile`` / ``stats --json`` CLI subcommands print it;
* the benchmarks write ``BENCH_<name>.json`` files via :func:`write_bench`
  so every recorded timing carries the operation counts that explain it;
* the golden-profile regression suite diffs it (CI uploads the golden
  file as an artifact, so two PRs' profiles can be compared directly).

Everything here is plain :mod:`json` over plain dicts -- the exporter adds
no information, only a canonical layout (sorted keys, stable field order)
so diffs are meaningful.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .metrics import MetricsRegistry
    from .profile import QueryProfile
    from .trace import Span

__all__ = [
    "profile_to_dict",
    "span_to_dict",
    "metrics_to_dict",
    "to_json",
    "write_bench",
]


def profile_to_dict(profile: "QueryProfile") -> dict[str, object]:
    """The canonical dict form of a profile (same as ``as_dict``)."""
    return profile.as_dict()


def span_to_dict(span: "Span") -> dict[str, object]:
    """A span tree as nested dicts: interval, attributes, events, children."""
    return {
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "duration": span.duration,
        "attributes": {k: _jsonable(v) for k, v in sorted(span.attributes.items())},
        "events": [
            {"kind": e.kind, "at": e.at, **{k: _jsonable(v) for k, v in e.fields.items()}}
            for e in span.events
        ],
        "children": [span_to_dict(child) for child in span.children],
    }


def metrics_to_dict(registry: "MetricsRegistry") -> dict[str, object]:
    """A registry snapshot (delegates to ``MetricsRegistry.as_dict``)."""
    return registry.as_dict()


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def to_json(payload: Mapping[str, object], indent: int = 2) -> str:
    """Canonical JSON text: sorted keys, stable indentation."""
    return json.dumps(payload, indent=indent, sort_keys=True, default=_jsonable)


def write_bench(name: str, payload: Mapping[str, object], directory: "str | Path") -> Path:
    """Write one benchmark's record as ``<directory>/BENCH_<name>.json``.

    The payload convention the benchmarks use is ``{"timings": {...},
    "profiles": {label: profile dict}}`` -- wall times next to the
    operation counts that explain them.  Returns the written path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    path.write_text(to_json(payload) + "\n", encoding="utf-8")
    return path
