"""Observability layer: metrics, tracing spans, and query profiles.

The counterpart to the resilience layer's "degrade, and say so": every
evaluator can now also *say what it did*.  Three coordinated pieces, all
zero-dependency and deterministic under an injected clock:

* :class:`MetricsRegistry` -- counters, gauges, and fixed-bucket
  histograms for always-on accounting (index hits, storage bytes);
* :class:`Tracer` / :class:`Span` -- nested timed spans forming a tree
  per query, with the resilience :class:`~repro.resilience.events.
  EventLog` feeding the same stream via :meth:`Tracer.event_log`;
* :class:`QueryProfile` -- the exact-operation-count contract returned
  by every ``*_profiled`` evaluator entry point, pinned by the
  golden-profile regression suite in ``tests/obs``.

See docs/OBSERVABILITY.md for the model and how to add instrumentation.
"""

from .export import metrics_to_dict, profile_to_dict, span_to_dict, to_json, write_bench
from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from .profile import QueryProfile
from .trace import Span, Tracer

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    # tracing
    "Span",
    "Tracer",
    # profiles
    "QueryProfile",
    # export
    "profile_to_dict",
    "span_to_dict",
    "metrics_to_dict",
    "to_json",
    "write_bench",
]
