"""Nested tracing spans over an injectable clock.

A :class:`Tracer` hands out :meth:`~Tracer.span` context managers; the
spans that open inside an open span become its children, so one query
produces a tree mirroring the call structure (``unql`` -> ``rpq`` ->
``dfa``).  Timing comes from the same :class:`~repro.resilience.clock.
Clock` protocol the resilience layer uses -- pass a
:class:`~repro.resilience.clock.SimulatedClock` and every duration in the
tree is exact and reproducible, which is how the span tests assert
well-nestedness (child intervals lie within their parent's) without
sleeping.

The resilience :class:`~repro.resilience.events.EventLog` plugs into the
same stream: :meth:`Tracer.event_log` builds a log whose ``emit`` also
attaches each event to the currently open span, so a retry storm shows up
*inside* the query span that suffered it rather than in a disconnected
side channel.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from ..resilience.clock import Clock, WallClock
from ..resilience.events import EventLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.events import Event

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One timed operation: name, interval, attributes, children, events."""

    name: str
    start: float
    end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    events: list["Event"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Elapsed clock time; 0.0 while the span is still open."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def closed(self) -> bool:
        return self.end is not None

    def annotate(self, **attributes: Any) -> "Span":
        """Attach key/value attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """All descendants (including self) with the given name."""
        return [s for s in self.walk() if s.name == name]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"{self.duration:g}s" if self.closed else "open"
        return f"<span {self.name} {state} children={len(self.children)}>"


class Tracer:
    """Builds trees of timed spans; deterministic under a simulated clock.

    ``with tracer.span("rpq", pattern=p):`` opens a span, nests everything
    opened inside it, and closes it on exit (also on exception -- a span
    that raises still gets an end time plus an ``error`` attribute).
    Completed top-level spans accumulate in :attr:`roots`.
    """

    def __init__(self, clock: "Clock | None" = None) -> None:
        self.clock: Clock = clock if clock is not None else WallClock()
        self.roots: list[Span] = []
        #: events emitted while no span was open (kept, not lost)
        self.orphan_events: list["Event"] = []
        self._stack: list[Span] = []

    @property
    def current(self) -> "Span | None":
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child span of the current span (or a new root)."""
        span = Span(name, start=self.clock.now(), attributes=dict(attributes))
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.attributes.setdefault("error", repr(exc))
            raise
        finally:
            span.end = self.clock.now()
            self._stack.pop()

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes to the innermost open span (no-op outside one)."""
        if self._stack:
            self._stack[-1].attributes.update(attributes)

    # -- the unified event stream ---------------------------------------------

    def record_event(self, event: "Event") -> None:
        """Attach a structured event to the innermost open span."""
        if self._stack:
            self._stack[-1].events.append(event)
        else:
            self.orphan_events.append(event)

    def event_log(self) -> EventLog:
        """An EventLog sharing this tracer's clock whose emissions also
        land on the currently open span -- the bridge that unifies the
        resilience event stream with the trace tree."""
        return EventLog(clock=self.clock, sink=self.record_event)

    # -- queries over finished traces -------------------------------------------

    def all_spans(self) -> Iterator[Span]:
        """Every recorded span, depth-first across all roots."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        """All recorded spans with the given name."""
        return [s for s in self.all_spans() if s.name == name]

    def total_events(self) -> int:
        return len(self.orphan_events) + sum(len(s.events) for s in self.all_spans())
