"""The query-profile contract: what an evaluation *did*, in exact counts.

Timing tells you a query got slower; it cannot tell you why, and it is
never reproducible enough to assert on.  A :class:`QueryProfile` is the
complement: deterministic operation counts -- product configurations
explored, DFA states materialized, index hits -- that are identical on
every run of the same query over the same data.  The golden-profile test
suite pins these numbers for a fixed query suite over the bundled
datasets, so an algorithmic regression (say, a change that doubles the
configurations the product construction explores) fails a test even when
the benchmark timings stay inside their noise band.

Every ``*_profiled`` entry point across the evaluators returns one of
these next to its normal answer.  The counts are defined so they can be
derived from the evaluation's own data structures after the fact, which
keeps the instrumented path within a few percent of the plain one
(``benchmarks/bench_obs_overhead.py`` holds the line).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["QueryProfile"]

#: Field order of the integer counts, shared by as_dict and merge.
_COUNT_FIELDS = (
    "nodes_visited",
    "edges_expanded",
    "dfa_states",
    "product_pairs",
    "index_hits",
    "index_misses",
    "bindings_produced",
    "results",
    "bytes_serialized",
    "bytes_loaded",
    "supersteps",
    "messages",
)


@dataclass
class QueryProfile:
    """Deterministic operation counts for one query evaluation.

    The count fields (all exact, all reproducible):

    * ``nodes_visited`` -- distinct graph nodes / OEM objects the
      evaluation touched;
    * ``edges_expanded`` -- outgoing edges scanned from those nodes;
    * ``dfa_states`` -- automaton states materialized *by this run*
      (lazy determinization makes this a per-query observable);
    * ``product_pairs`` -- (node, state) configurations explored by the
      automaton product;
    * ``index_hits`` / ``index_misses`` -- physical-index lookups that
      could / could not answer from the structure;
    * ``bindings_produced`` -- variable environments the binding stage
      yielded (before and independent of construction);
    * ``results`` -- answer units produced (matched nodes, rows,
      findings);
    * ``bytes_serialized`` / ``bytes_loaded`` -- storage traffic;
    * ``supersteps`` / ``messages`` -- BSP rounds and cross-site
      messages of a distributed evaluation.

    ``complete`` carries the partial-result verdict (False when a
    degraded engine lost regions); ``extras`` holds engine-specific
    counts (e.g. per-site message totals) without schema changes.
    Planner-issued profiles (:mod:`repro.planner`) report their routing
    there: ``index_answered`` / ``guide_answered`` mark a query answered
    entirely from the path index or DataGuide, ``guide_pruned_partitions``
    is the guide mask's static pruning strength on a kernel traversal,
    and ``index_seeded`` counts Lorel binding clauses seeded from pushed
    where-predicates.  The golden suite's direct engine paths never set
    these, so pinned profiles are unaffected.
    """

    engine: str = ""
    query: str = ""
    nodes_visited: int = 0
    edges_expanded: int = 0
    dfa_states: int = 0
    product_pairs: int = 0
    index_hits: int = 0
    index_misses: int = 0
    bindings_produced: int = 0
    results: int = 0
    bytes_serialized: int = 0
    bytes_loaded: int = 0
    supersteps: int = 0
    messages: int = 0
    complete: bool = True
    extras: dict[str, int] = field(default_factory=dict)

    def merge(self, other: "QueryProfile") -> "QueryProfile":
        """Fold another profile's counts into this one (sub-operations)."""
        for name in _COUNT_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.complete = self.complete and other.complete
        for key, value in other.extras.items():
            self.extras[key] = self.extras.get(key, 0) + value
        return self

    def as_dict(self) -> dict[str, object]:
        """A stable, JSON-ready dict -- the golden-file representation."""
        out: dict[str, object] = {"engine": self.engine, "query": self.query}
        for name in _COUNT_FIELDS:
            out[name] = getattr(self, name)
        out["complete"] = self.complete
        out["extras"] = dict(sorted(self.extras.items()))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        busy = ", ".join(
            f"{name}={getattr(self, name)}"
            for name in _COUNT_FIELDS
            if getattr(self, name)
        )
        return f"<profile {self.engine or '?'} {busy or 'empty'}>"
