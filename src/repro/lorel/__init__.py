"""Lorel: the SQL-style language over OEM (section 3's first approach).

Quick use::

    from repro.core.oem import OemDatabase
    from repro.lorel import lorel, lorel_rows

    db = OemDatabase.from_obj(
        {"Entry": [{"Movie": {"Title": "Casablanca", "Year": 1942}}]})
    answer = lorel('select m.Title from DB.Entry.Movie m '
                   'where m.Year < 1950', db)
    print(lorel_rows(answer))   # [{'Title': ['Casablanca']}]
"""

from __future__ import annotations

from ..core.oem import OemDatabase
from .ast import LorelQuery
from .coerce import compare_values, like_value
from .evaluator import (
    LorelRuntimeError,
    construct_answer,
    evaluate_lorel,
    evaluate_lorel_profiled,
    lorel_bindings,
    lorel_bindings_profiled,
)
from .optimizer import clause_cost, reorder_from_clauses
from .parser import LorelSyntaxError, parse_lorel

__all__ = [
    "lorel",
    "lorel_rows",
    "parse_lorel",
    "evaluate_lorel",
    "evaluate_lorel_profiled",
    "lorel_bindings",
    "lorel_bindings_profiled",
    "construct_answer",
    "reorder_from_clauses",
    "clause_cost",
    "compare_values",
    "like_value",
    "LorelQuery",
    "LorelSyntaxError",
    "LorelRuntimeError",
]


def lorel(
    text: str,
    db: OemDatabase,
    db_name: str = "DB",
    optimize: bool = True,
    use_indexes: bool = True,
) -> OemDatabase:
    """Parse and evaluate a Lorel query against an OEM database.

    Returns the answer as a new OEM database named ``Answer`` whose root
    holds one ``row`` child per result.  ``optimize=True`` applies the
    dependency-safe from-clause reordering; ``use_indexes=True``
    additionally routes through the planner layer: the cached
    :class:`~repro.planner.OemIndexes` of ``db`` (rebuilt automatically
    when the database mutates) push selective where-conjuncts down into
    the binding stage, and the snapshot's
    :class:`~repro.planner.GraphStatistics` switch the reordering to the
    frequency-driven cost model.  Answers are identical under every
    flag combination -- tested.
    """
    query = parse_lorel(text)
    indexes = None
    if use_indexes:
        from ..planner.pushdown import oem_indexes_for

        indexes = oem_indexes_for(db)
    if optimize:
        query = reorder_from_clauses(
            query, stats=indexes.stats if indexes is not None else None
        )
    return evaluate_lorel(query, db, db_name, indexes=indexes)


def lorel_rows(answer: OemDatabase) -> list[dict[str, list[object]]]:
    """Flatten an answer database into dicts of atomic values per row.

    Complex projected objects appear as nested dicts; atomic ones as
    their values; a cyclic reference renders as the marker string
    ``"<cycle>"`` (OEM data is cyclic in general).  Meant for tests and
    quick inspection.
    """

    def value_of(oid, on_path: frozenset) -> object:
        obj = answer.get(oid)
        if obj.is_atomic:
            return obj.atom
        if oid in on_path:
            return "<cycle>"
        deeper = on_path | {oid}
        out: dict[str, list[object]] = {}
        for label, child in obj.children:
            out.setdefault(label, []).append(value_of(child, deeper))
        return out

    root = answer.lookup_name("Answer")
    rows = []
    for row_oid in answer.children(root, "row"):
        row: dict[str, list[object]] = {}
        for label, child in answer.get(row_oid).children:
            row.setdefault(label, []).append(value_of(child, frozenset()))
        rows.append(row)
    return rows
