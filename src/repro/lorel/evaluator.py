"""Evaluator for the Lorel-style language over OEM databases.

Semantics follow Lore's select fragment:

* **from** clauses bind each alias to every object its general path
  expression reaches (paths evaluated by the same automaton product as
  everywhere else, so cyclic OEM data is fine);
* **where** filters binding environments; path operands denote the *set*
  of objects they reach and comparisons are existential over that set
  with the coercions of :mod:`repro.lorel.coerce`;
* **select** builds an answer OEM database: one ``row`` object per
  surviving environment, carrying one child per select item (labeled by
  the ``as`` name, or the last path label, or the alias).  Projected
  objects are deep-copied into the answer, preserving sharing and cycles
  -- object identity survives exactly as far as it is observable.
"""

from __future__ import annotations

from collections import deque

from ..automata.dfa import LazyDfa
from ..automata.nfa import build_nfa
from ..automata.plan_cache import PlanCache
from ..automata.regex import PathRegex
from ..core.labels import sym
from ..core.oem import OemDatabase, Oid
from ..obs import QueryProfile
from .ast import (
    BoolOp,
    Compare,
    ExistsPredicate,
    LikePredicate,
    LiteralOperand,
    LorelQuery,
    NotOp,
    PathOperand,
    SelectItem,
)

__all__ = [
    "evaluate_lorel",
    "evaluate_lorel_profiled",
    "lorel_bindings",
    "lorel_bindings_profiled",
    "construct_answer",
    "LorelRuntimeError",
]


class LorelRuntimeError(ValueError):
    """Raised on evaluation errors (unknown aliases, bad bases...)."""


#: Compiled path plans shared across unprofiled Lorel queries.  Profiled
#: evaluation compiles fresh per runner so its ``dfa_states`` accounting
#: (pinned by the golden-profile suite) is independent of query history.
_PLAN_CACHE = PlanCache(name="lorel_plan_cache")


def _oem_rpq(db: OemDatabase, start: Oid, dfa: LazyDfa) -> set[Oid]:
    """Product traversal over OEM children (symbol-labeled edges)."""
    results: set[Oid] = set()
    seen = {(start, dfa.start)}
    if dfa.is_accepting(dfa.start):
        results.add(start)
    queue = deque([(start, dfa.start)])
    while queue:
        oid, state = queue.popleft()
        obj = db.get(oid)
        for label, child in obj.children:
            nxt = dfa.step(state, sym(label))
            if dfa.is_dead(nxt):
                continue
            config = (child, nxt)
            if config in seen:
                continue
            seen.add(config)
            if dfa.is_accepting(nxt):
                results.add(child)
            queue.append(config)
    return results


def _oem_rpq_profiled(
    db: OemDatabase, start: Oid, dfa: LazyDfa, profile: QueryProfile
) -> set[Oid]:
    """:func:`_oem_rpq` accumulating traversal counts into ``profile``.

    Counts are derived from the explored config set after the traversal
    (every seen config is expanded exactly once), so the loop itself is
    the plain one -- the same post-hoc strategy as the RPQ product.
    """
    states_before = dfa.num_materialized_states
    results: set[Oid] = set()
    seen = {(start, dfa.start)}
    if dfa.is_accepting(dfa.start):
        results.add(start)
    queue = deque([(start, dfa.start)])
    while queue:
        oid, state = queue.popleft()
        obj = db.get(oid)
        for label, child in obj.children:
            nxt = dfa.step(state, sym(label))
            if dfa.is_dead(nxt):
                continue
            config = (child, nxt)
            if config in seen:
                continue
            seen.add(config)
            if dfa.is_accepting(nxt):
                results.add(child)
            queue.append(config)
    visited = {config[0] for config in seen}
    profile.product_pairs += len(seen)
    profile.nodes_visited += len(visited)
    profile.edges_expanded += db.total_fanout(visited)
    profile.dfa_states += dfa.num_materialized_states - states_before
    return results


def _oem_rpq_many(db: OemDatabase, starts: list[Oid], dfa: LazyDfa) -> dict[Oid, set[Oid]]:
    """Batched :func:`_oem_rpq`: one tagged traversal serving many starts.

    Configurations carry their origin, ``(start, oid, state)``, so each
    start gets its own answer while all of them share the plan's
    materialized states and truth vectors in a single queue -- this is
    what turns Lorel's per-binding path conditions from one traversal
    per environment into one traversal per clause.
    """
    order = list(dict.fromkeys(starts))
    results: dict[Oid, set[Oid]] = {s: set() for s in order}
    accept_start = dfa.is_accepting(dfa.start)
    seen: set[tuple[Oid, Oid, int]] = set()
    queue: deque[tuple[Oid, Oid, int]] = deque()
    for s in order:
        if accept_start:
            results[s].add(s)
        config = (s, s, dfa.start)
        seen.add(config)
        queue.append(config)
    while queue:
        tag, oid, state = queue.popleft()
        for label, child in db.get(oid).children:
            nxt = dfa.step(state, sym(label))
            if dfa.is_dead(nxt):
                continue
            config = (tag, child, nxt)
            if config in seen:
                continue
            seen.add(config)
            if dfa.is_accepting(nxt):
                results[tag].add(child)
            queue.append(config)
    return results


class _Runner:
    def __init__(
        self, db: OemDatabase, db_name: str, profile: "QueryProfile | None" = None
    ) -> None:
        self.db = db
        self.db_name = db_name
        self.profile = profile
        self._dfas: dict[str, LazyDfa] = {}
        # (path text, start oid) -> targets; unprofiled only, so profiled
        # runs traverse afresh and report history-independent counts
        self._memo: "dict[tuple[str, Oid], set[Oid]] | None" = (
            {} if profile is None else None
        )

    def dfa_of(self, path: PathRegex, text: str) -> LazyDfa:
        dfa = self._dfas.get(text)
        if dfa is None:
            if self.profile is None:
                dfa = _PLAN_CACHE.get(text, lambda: LazyDfa(build_nfa(path)))
            else:
                dfa = LazyDfa(build_nfa(path))
                # the fresh compile's start state is work this query did
                self.profile.dfa_states += dfa.num_materialized_states
            self._dfas[text] = dfa
        return dfa

    def start_of(self, base: str, env: dict[str, Oid]) -> Oid:
        if base in env:
            return env[base]
        if base == self.db_name or base in self.db.names:
            return self.db.lookup_name(base if base in self.db.names else self.db_name)
        raise LorelRuntimeError(f"unknown alias or database {base!r}")

    def path_targets(self, operand: PathOperand, env: dict[str, Oid]) -> set[Oid]:
        start = self.start_of(operand.base, env)
        if operand.path is None:
            return {start}
        if self.profile is not None:
            dfa = self.dfa_of(operand.path, operand.path_text)
            return _oem_rpq_profiled(self.db, start, dfa, self.profile)
        assert self._memo is not None
        key = (operand.path_text, start)
        cached = self._memo.get(key)
        if cached is None:
            dfa = self.dfa_of(operand.path, operand.path_text)
            cached = self._memo[key] = _oem_rpq(self.db, start, dfa)
        return cached

    def prefetch(self, operand: PathOperand, starts: list[Oid]) -> None:
        """Batch-evaluate a path operand from many starts into the memo.

        One :func:`_oem_rpq_many` call covers every start the memo has
        not seen; later :meth:`path_targets` calls are dict hits.  A
        no-op under profiling (counts must reflect per-binding work).
        """
        if self._memo is None or operand.path is None:
            return
        text = operand.path_text
        missing = [s for s in dict.fromkeys(starts) if (text, s) not in self._memo]
        if not missing:
            return
        dfa = self.dfa_of(operand.path, text)
        for start, targets in _oem_rpq_many(self.db, missing, dfa).items():
            self._memo[(text, start)] = targets

    # -- where ----------------------------------------------------------------

    def operand_values(self, operand, env: dict[str, Oid]) -> list[object]:
        """The value set of an operand: literals are singletons; paths
        yield the atoms of the reached objects (complex objects yield a
        non-value marker that fails comparisons but counts for exists)."""
        if isinstance(operand, LiteralOperand):
            return [operand.value]
        values: list[object] = []
        for oid in self.path_targets(operand, env):
            obj = self.db.get(oid)
            values.append(obj.atom if obj.is_atomic else _COMPLEX)
        return values

    def check(self, predicate, env: dict[str, Oid]) -> bool:
        from .coerce import compare_values, like_value

        if isinstance(predicate, BoolOp):
            if predicate.op == "and":
                return self.check(predicate.left, env) and self.check(
                    predicate.right, env
                )
            return self.check(predicate.left, env) or self.check(predicate.right, env)
        if isinstance(predicate, NotOp):
            return not self.check(predicate.inner, env)
        if isinstance(predicate, ExistsPredicate):
            return bool(self.path_targets(predicate.operand, env))
        if isinstance(predicate, LikePredicate):
            return any(
                value is not _COMPLEX and like_value(value, predicate.pattern)
                for value in self.operand_values(predicate.operand, env)
            )
        if isinstance(predicate, Compare):
            lefts = self.operand_values(predicate.left, env)
            rights = self.operand_values(predicate.right, env)
            return any(
                left is not _COMPLEX
                and right is not _COMPLEX
                and compare_values(left, predicate.op, right)
                for left in lefts
                for right in rights
            )
        raise LorelRuntimeError(f"unknown predicate {predicate!r}")


class _Complex:
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<complex object>"


_COMPLEX = _Complex()


def _bindings_with_runner(
    query: LorelQuery, runner: _Runner, indexes=None
) -> list[dict[str, Oid]]:
    """The from/where core, against an existing runner (shared dfa cache).

    With ``indexes`` (a :class:`repro.planner.pushdown.OemIndexes`), the
    pushable where-conjuncts are resolved into per-alias candidate oid
    sets *before* binding, and each alias binds only to targets inside
    its candidate set -- predicate pushdown.  The full where clause
    still filters the survivors, so the answer is identical to the
    post-filtering evaluation (asserted by the planner property suite);
    pushdown only shrinks the environment sets the later clauses and the
    residual filter have to process.
    """
    candidates: dict[str, set[Oid]] = {}
    if indexes is not None and query.where is not None:
        from ..planner.pushdown import pushdown_candidates

        candidates = pushdown_candidates(query, indexes, runner.db_name)
    envs: list[dict[str, Oid]] = [{}]
    for clause in query.from_clauses:
        operand = PathOperand(clause.base, clause.path, clause.path_text)
        allowed = candidates.get(clause.alias)
        if allowed is not None and runner.profile is not None:
            runner.profile.extras["index_seeded"] = (
                runner.profile.extras.get("index_seeded", 0) + 1
            )
        # When the clause path is a fixed symbol chain, a seeded clause
        # skips the forward traversal entirely: a candidate binds iff the
        # reverse walk from it over the chain reaches the clause's start,
        # which the index answers from its parent map.  The two
        # enumerations produce the same sorted oid set -- the candidate
        # set is exact per conjunct and the reverse walk is exact per
        # path -- so only the work changes (the property suite compares
        # whole binding lists).
        sources_of: "dict[Oid, set[Oid]] | None" = None
        if allowed is not None:
            from ..planner.pushdown import fixed_symbol_path

            fixed = fixed_symbol_path(clause.path)
            if fixed is not None:
                sources_of = {
                    oid: indexes.sources_via({oid}, fixed) for oid in allowed
                }
        if runner.profile is None and sources_of is None:
            # batch all environments' starts through one tagged traversal
            runner.prefetch(
                operand, [runner.start_of(clause.base, env) for env in envs]
            )
        nxt: list[dict[str, Oid]] = []
        for env in envs:
            if sources_of is not None:
                start = runner.start_of(clause.base, env)
                targets = (o for o, srcs in sources_of.items() if start in srcs)
            else:
                targets = (
                    oid
                    for oid in runner.path_targets(operand, env)
                    if allowed is None or oid in allowed
                )
            for oid in sorted(targets):
                extended = dict(env)
                extended[clause.alias] = oid
                nxt.append(extended)
        envs = nxt
        if not envs:
            return []
    if query.where is not None:
        envs = [env for env in envs if runner.check(query.where, env)]
    return envs


def lorel_bindings(
    query: LorelQuery, db: OemDatabase, db_name: str = "DB", *, indexes=None
) -> list[dict[str, Oid]]:
    """The alias environments the from/where clauses produce.

    ``indexes`` (a :class:`repro.planner.pushdown.OemIndexes`) enables
    predicate pushdown; answers are identical with or without it.
    """
    return _bindings_with_runner(query, _Runner(db, db_name), indexes)


def lorel_bindings_profiled(
    query: LorelQuery,
    db: OemDatabase,
    db_name: str = "DB",
    *,
    query_text: str = "",
    indexes=None,
) -> tuple[list[dict[str, Oid]], QueryProfile]:
    """:func:`lorel_bindings` plus a :class:`~repro.obs.QueryProfile`.

    Counts cover every OEM product traversal the from/where clauses ran
    (objects visited, child edges scanned, configurations explored, DFA
    states materialized) and the environments produced.  With
    ``indexes``, pushdown-seeded clauses add an ``index_seeded`` extra
    (the golden suite passes no indexes, so its profiles are untouched).
    """
    profile = QueryProfile(engine="lorel", query=query_text)
    envs = _bindings_with_runner(query, _Runner(db, db_name, profile), indexes)
    profile.bindings_produced = len(envs)
    profile.results = len(envs)
    return envs, profile


def _construct_answer(
    query: LorelQuery, db: OemDatabase, runner: _Runner, envs: list[dict[str, Oid]]
) -> OemDatabase:
    """Build the ``Answer`` database: one row object per environment."""
    answer = OemDatabase()
    answer_root = answer.new_complex()
    answer.set_name("Answer", answer_root)
    copied: dict[Oid, Oid] = {}

    def copy_into(oid: Oid) -> Oid:
        if oid in copied:
            return copied[oid]
        obj = db.get(oid)
        if obj.is_atomic:
            new = answer.new_atomic(obj.atom)
            copied[oid] = new
            return new
        new = answer.new_complex()
        copied[oid] = new
        for label, child in obj.children:
            answer.add_child(new, label, copy_into(child))
        return new

    for env in envs:
        row = answer.new_complex()
        answer.add_child(answer_root, "row", row)
        for item in query.items:
            label = _item_label(item)
            for oid in sorted(runner.path_targets(item.operand, env)):
                answer.add_child(row, label, copy_into(oid))
    return answer


def construct_answer(
    query: LorelQuery,
    db: OemDatabase,
    envs: "list[dict[str, Oid]]",
    db_name: str = "DB",
) -> OemDatabase:
    """Build the ``Answer`` database from precomputed environments.

    The public face of the construction phase, for engines (notably the
    SQL backend) that compute the binding environments by other means:
    answer databases are then identical by construction, because both
    engines share this exact code for the select phase.
    """
    return _construct_answer(query, db, _Runner(db, db_name), envs)


def evaluate_lorel(
    query: LorelQuery, db: OemDatabase, db_name: str = "DB", *, indexes=None
) -> OemDatabase:
    """Run a parsed query; the result is an OEM database named ``Answer``.

    ``indexes`` (a :class:`repro.planner.pushdown.OemIndexes`) enables
    where-clause pushdown; the answer database is identical either way.
    """
    runner = _Runner(db, db_name)
    envs = _bindings_with_runner(query, runner, indexes)
    return _construct_answer(query, db, runner, envs)


def evaluate_lorel_profiled(
    query: LorelQuery,
    db: OemDatabase,
    db_name: str = "DB",
    *,
    query_text: str = "",
    tracer=None,
    indexes=None,
) -> tuple[OemDatabase, QueryProfile]:
    """:func:`evaluate_lorel` plus a :class:`~repro.obs.QueryProfile`.

    One profile covers both phases: the from/where binding traversals
    and the select items' path evaluations during answer construction.
    ``bindings_produced`` is the surviving environment count,
    ``results`` the number of answer rows; both are deterministic for a
    fixed query and database (the golden-profile suite asserts so).
    """
    profile = QueryProfile(engine="lorel", query=query_text)
    runner = _Runner(db, db_name, profile)

    def run() -> OemDatabase:
        envs = _bindings_with_runner(query, runner, indexes)
        profile.bindings_produced = len(envs)
        answer = _construct_answer(query, db, runner, envs)
        profile.results = len(envs)
        return answer

    if tracer is not None:
        with tracer.span("lorel", query=query_text) as span:
            answer = run()
            span.annotate(rows=profile.results)
    else:
        answer = run()
    return answer, profile


def _item_label(item: SelectItem) -> str:
    if item.label is not None:
        return item.label
    if item.operand.path_text:
        # last identifier-ish component of the path text
        tail = item.operand.path_text.split(".")[-1]
        cleaned = "".join(c for c in tail if c.isalnum() or c == "_")
        if cleaned:
            return cleaned
    return item.operand.base
