"""Abstract syntax of the Lorel-style language.

Lorel (the paper's [5], the Lore system's language) keeps SQL's
``select ... from ... where`` shape over OEM data: *from* clauses bind
variables by general path expressions, *where* is a boolean combination of
coercing comparisons, and *select* projects paths from the bound
variables.  "Lorel ... requires a rich set of overloadings for its
operators for dealing with comparisons of objects with values and of
values with sets" -- those overloadings live in :mod:`repro.lorel.coerce`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..automata.regex import PathRegex

__all__ = [
    "FromClause",
    "SelectItem",
    "PathOperand",
    "LiteralOperand",
    "Operand",
    "Predicate",
    "Compare",
    "LikePredicate",
    "ExistsPredicate",
    "BoolOp",
    "NotOp",
    "LorelQuery",
]


@dataclass(frozen=True)
class FromClause:
    """``base.path alias``: bind ``alias`` to each object the path reaches.

    ``base`` is either the database name (``DB``) or a previously bound
    alias; ``path`` may be ``None`` for a pure re-aliasing.
    """

    base: str
    path: "PathRegex | None"
    path_text: str
    alias: str


@dataclass(frozen=True)
class PathOperand:
    """``alias.path`` used as a value: the set of objects it reaches."""

    base: str
    path: "PathRegex | None"
    path_text: str


@dataclass(frozen=True)
class LiteralOperand:
    value: object


Operand = Union[PathOperand, LiteralOperand]


@dataclass(frozen=True)
class Compare:
    """``operand op operand`` with Lorel's existential set semantics."""

    left: Operand
    op: str
    right: Operand


@dataclass(frozen=True)
class LikePredicate:
    operand: Operand
    pattern: str


@dataclass(frozen=True)
class ExistsPredicate:
    """``exists alias.path`` -- the path reaches at least one object."""

    operand: PathOperand


@dataclass(frozen=True)
class BoolOp:
    op: str  # "and" | "or"
    left: "Predicate"
    right: "Predicate"


@dataclass(frozen=True)
class NotOp:
    inner: "Predicate"


Predicate = Union[Compare, LikePredicate, ExistsPredicate, BoolOp, NotOp]


@dataclass(frozen=True)
class SelectItem:
    """A projection: ``alias.path`` with an optional ``as Name`` label."""

    operand: PathOperand
    label: "str | None" = None


@dataclass(frozen=True)
class LorelQuery:
    items: tuple[SelectItem, ...]
    from_clauses: tuple[FromClause, ...]
    where: "Predicate | None" = None
