"""Lorel query optimization: from-clause ordering (section 4).

The paper points at [5, 15]: Lorel-style systems extend object-oriented
optimization techniques.  The cheapest and most robust of those is *join
(re)ordering* of the binding clauses: a from clause whose path is a short
chain of exact labels is more selective and cheaper to expand than one
with ``#`` or wildcards, so it should bind first, shrinking the
environment set every later clause multiplies against.

Two cost models drive the ordering.  Without statistics, a *shape
heuristic* (exact steps cheap, stars expensive).  With a
:class:`~repro.planner.GraphStatistics` snapshot, the *data* decides:
clause cost is the estimated path cardinality from actual label
frequencies, so a clause over a rare label beats a structurally simpler
clause over a ubiquitous one -- and a clause over an *absent* label
costs 0 and binds first, emptying the environment set immediately.

Only orderings that respect *dependencies* (a clause whose base is an
alias must follow the clause that binds the alias) are considered, so the
rewrite never changes the answer -- tested against the unoptimized order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..automata.regex import AtomRE, ConcatRE, PathRegex, StarRE
from .ast import FromClause, LorelQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..planner.stats import GraphStatistics

__all__ = ["clause_cost", "reorder_from_clauses"]


def clause_cost(path: "PathRegex | None", stats: "GraphStatistics | None" = None) -> float:
    """The ordering cost of a from-clause path.

    With ``stats``, the estimated match cardinality over the actual
    label frequencies; without, the original shape heuristic (exact
    steps are cheap, stars/wildcards expensive).
    """
    if stats is not None:
        return stats.cardinality(path)
    if path is None:
        return 0.0
    if isinstance(path, AtomRE):
        return 1.0 if path.predicate.is_exact else 4.0
    if isinstance(path, ConcatRE):
        return clause_cost(path.left) + clause_cost(path.right)
    if isinstance(path, StarRE):
        return 16.0 + clause_cost(path.inner)
    # alternation / plus / optional: moderately branchy
    parts = [getattr(path, name) for name in ("left", "right", "inner") if hasattr(path, name)]
    return 4.0 + sum(clause_cost(p) for p in parts)


def reorder_from_clauses(
    query: LorelQuery, stats: "GraphStatistics | None" = None
) -> LorelQuery:
    """Greedy cheapest-first ordering of from clauses, dependency-safe.

    ``stats`` switches :func:`clause_cost` to the statistics-driven
    estimator; the ordering stays dependency-safe either way, so the
    answer never changes -- only the work.
    """
    remaining = list(query.from_clauses)
    bound: set[str] = set()
    ordered: list[FromClause] = []
    while remaining:
        ready = [
            c
            for c in remaining
            if c.base in bound or all(c.base != other.alias for other in query.from_clauses)
        ]
        if not ready:  # dependency knot (shadowed alias): keep given order
            ready = [remaining[0]]
        best = min(ready, key=lambda c: (clause_cost(c.path, stats), remaining.index(c)))
        remaining.remove(best)
        ordered.append(best)
        bound.add(best.alias)
    return LorelQuery(query.items, tuple(ordered), query.where)
