"""Parser for the Lorel-style concrete syntax.

Grammar::

    query    := 'select' item (',' item)*
                'from' fromcl (',' fromcl)*
                ('where' predicate)?
    item     := pathref ('as' IDENT)?
    fromcl   := pathref IDENT
    pathref  := IDENT ('.' PATHREGEX)?
    predicate:= disj
    disj     := conj ('or' conj)*
    conj     := unit ('and' unit)*
    unit     := 'not' unit | '(' predicate ')' | 'exists' pathref
              | operand OP operand | operand 'like' STRING
    operand  := pathref | STRING | NUMBER | 'true' | 'false'

The path part after the first dot is handed to the shared path-regex
grammar, so ``DB.Entry(.Movie)?.Title``-style general path expressions and
``%`` wildcards work exactly as in the paper's Lorel examples.

One concession to the regex embedding: comparison operators must be
surrounded by whitespace (``m.Year > 1950``), because ``<``, ``>`` and
``!`` are meaningful *inside* path expressions (``<int>``, ``!Movie``) and
a path is delimited by the first top-level whitespace.
"""

from __future__ import annotations

from ..automata.regex import parse_path_regex
from .ast import (
    BoolOp,
    Compare,
    ExistsPredicate,
    FromClause,
    LikePredicate,
    LiteralOperand,
    LorelQuery,
    NotOp,
    PathOperand,
    SelectItem,
)

__all__ = ["parse_lorel", "LorelSyntaxError"]


class LorelSyntaxError(ValueError):
    """Raised on malformed Lorel query text."""


_OPS = ("!=", "<=", ">=", "=", "<", ">")
_KEYWORDS = {"select", "from", "where", "and", "or", "not", "as", "like", "exists", "true", "false"}


class _P:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def err(self, message: str) -> LorelSyntaxError:
        return LorelSyntaxError(f"{message} at position {self.pos} in {self.text!r}")

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self.skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def at_word(self, word: str) -> bool:
        self.skip_ws()
        end = self.pos + len(word)
        if self.text[self.pos : end].lower() != word:
            return False
        return end >= len(self.text) or not (
            self.text[end].isalnum() or self.text[end] == "_"
        )

    def eat_word(self, word: str) -> None:
        if not self.at_word(word):
            raise self.err(f"expected keyword {word!r}")
        self.pos += len(word)

    def ident(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] == "_"
        ):
            self.pos += 1
        if start == self.pos:
            raise self.err("expected an identifier")
        return self.text[start : self.pos]

    def quoted(self) -> str:
        quote = self.peek()
        if quote not in "\"'":
            raise self.err("expected a quoted string")
        self.pos += 1
        out = []
        while True:
            if self.pos >= len(self.text):
                raise self.err("unterminated string")
            ch = self.text[self.pos]
            self.pos += 1
            if ch == quote:
                return "".join(out)
            if ch == "\\" and self.pos < len(self.text):
                ch = self.text[self.pos]
                self.pos += 1
            out.append(ch)

    # -- path references ----------------------------------------------------------

    def pathref(self) -> PathOperand:
        base = self.ident()
        if base.lower() in _KEYWORDS:
            raise self.err(f"{base!r} cannot start a path")
        if self.peek() != ".":
            return PathOperand(base, None, "")
        self.pos += 1  # the dot
        start = self.pos
        depth = 0
        in_quote: str | None = None
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if in_quote:
                if ch == "\\":
                    self.pos += 1
                elif ch == in_quote:
                    in_quote = None
            elif ch in "\"'`":
                in_quote = ch
            elif ch == "(":
                depth += 1
            elif ch == ")":
                if depth == 0:
                    break
                depth -= 1
            elif ch == "," and depth == 0:
                break
            elif ch.isspace() and depth == 0:
                break
            self.pos += 1
        text = self.text[start : self.pos].strip()
        if not text:
            raise self.err("empty path after '.'")
        try:
            regex = parse_path_regex(text)
        except Exception as exc:
            raise LorelSyntaxError(f"bad path {text!r}: {exc}") from exc
        return PathOperand(base, regex, text)

    # -- operands -------------------------------------------------------------------

    def operand(self):
        ch = self.peek()
        if ch in "\"'":
            return LiteralOperand(self.quoted())
        if ch.isdigit() or ch == "-":
            return LiteralOperand(self.number())
        if self.at_word("true"):
            self.eat_word("true")
            return LiteralOperand(True)
        if self.at_word("false"):
            self.eat_word("false")
            return LiteralOperand(False)
        return self.pathref()

    def number(self):
        self.skip_ws()
        start = self.pos
        if self.peek() == "-":
            self.pos += 1
        seen_dot = False
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch.isdigit():
                self.pos += 1
            elif ch == "." and not seen_dot and self.pos + 1 < len(self.text) and self.text[self.pos + 1].isdigit():
                seen_dot = True
                self.pos += 1
            else:
                break
        text = self.text[start : self.pos]
        try:
            return float(text) if seen_dot else int(text)
        except ValueError:
            raise self.err(f"bad number {text!r}") from None

    # -- predicates -------------------------------------------------------------------

    def predicate(self):
        node = self.conj()
        while self.at_word("or"):
            self.eat_word("or")
            node = BoolOp("or", node, self.conj())
        return node

    def conj(self):
        node = self.unit()
        while self.at_word("and"):
            self.eat_word("and")
            node = BoolOp("and", node, self.unit())
        return node

    def unit(self):
        if self.at_word("not"):
            self.eat_word("not")
            return NotOp(self.unit())
        if self.peek() == "(":
            self.pos += 1
            node = self.predicate()
            self.skip_ws()
            if self.peek() != ")":
                raise self.err("expected ')'")
            self.pos += 1
            return node
        if self.at_word("exists"):
            self.eat_word("exists")
            operand = self.pathref()
            return ExistsPredicate(operand)
        left = self.operand()
        if self.at_word("like"):
            self.eat_word("like")
            return LikePredicate(left, self.quoted())
        self.skip_ws()
        for op in _OPS:
            if self.text[self.pos : self.pos + len(op)] == op:
                self.pos += len(op)
                return Compare(left, op, self.operand())
        raise self.err("expected a comparison, 'like', or boolean operator")

    # -- the query -------------------------------------------------------------------------

    def query(self) -> LorelQuery:
        self.eat_word("select")
        items = [self.select_item()]
        while self.peek() == ",":
            self.pos += 1
            items.append(self.select_item())
        self.eat_word("from")
        froms = [self.from_clause()]
        while self.peek() == ",":
            self.pos += 1
            froms.append(self.from_clause())
        where = None
        if self.at_word("where"):
            self.eat_word("where")
            where = self.predicate()
        self.skip_ws()
        if self.pos != len(self.text):
            raise self.err("trailing input")
        return LorelQuery(tuple(items), tuple(froms), where)

    def select_item(self) -> SelectItem:
        operand = self.pathref()
        if self.at_word("as"):
            self.eat_word("as")
            return SelectItem(operand, self.ident())
        return SelectItem(operand)

    def from_clause(self) -> FromClause:
        ref = self.pathref()
        alias = self.ident()
        if alias.lower() in _KEYWORDS:
            raise self.err(f"{alias!r} cannot be an alias")
        return FromClause(ref.base, ref.path, ref.path_text, alias)


def parse_lorel(text: str) -> LorelQuery:
    """Parse Lorel query text into a :class:`~repro.lorel.ast.LorelQuery`."""
    return _P(text).query()
