"""Lorel's coercing comparisons.

Section 3: "Lorel ... requires a rich set of overloadings for its
operators for dealing with comparisons of objects with values and of
values with sets."  Centralizing the overloading rules here keeps the
evaluator small:

* **object vs value** -- an atomic object compares by its atom; a complex
  object never equals an atomic value;
* **value vs set** -- set-valued operands compare *existentially*: the
  comparison holds if some element satisfies it (handled by the evaluator
  calling :func:`compare_values` per element);
* **type coercion** -- numeric widening int <-> float, and string <->
  number parsing (``"1942" = 1942`` holds), following Lorel's forgiving
  comparisons; booleans only compare to booleans.
"""

from __future__ import annotations

import fnmatch

__all__ = ["coerce_pair", "compare_values", "like_value"]


def coerce_pair(left: object, right: object) -> "tuple[object, object] | None":
    """Coerce two atoms to a comparable pair, or ``None`` if incomparable."""
    if isinstance(left, bool) or isinstance(right, bool):
        if isinstance(left, bool) and isinstance(right, bool):
            return left, right
        return None
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left, right
    if isinstance(left, str) and isinstance(right, str):
        return left, right
    # string <-> number coercion
    if isinstance(left, str) and isinstance(right, (int, float)):
        parsed = _parse_number(left)
        return (parsed, right) if parsed is not None else None
    if isinstance(right, str) and isinstance(left, (int, float)):
        parsed = _parse_number(right)
        return (left, parsed) if parsed is not None else None
    return None


def _parse_number(text: str) -> "int | float | None":
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return None


def compare_values(left: object, op: str, right: object) -> bool:
    """One atomic comparison under Lorel coercion rules."""
    pair = coerce_pair(left, right)
    if pair is None:
        # incomparable values: only inequality holds
        return op == "!="
    a, b = pair
    try:
        return {
            "=": a == b,
            "!=": a != b,
            "<": a < b,
            "<=": a <= b,
            ">": a > b,
            ">=": a >= b,
        }[op]
    except TypeError:  # pragma: no cover - coerce_pair prevents this
        return False


def like_value(value: object, pattern: str) -> bool:
    """SQL-flavoured ``like`` with ``%`` wildcards, strings only."""
    if not isinstance(value, str):
        return False
    return fnmatch.fnmatchcase(value, pattern.replace("%", "*"))
