"""Schema-based query pruning (section 5, [20] Fernandez & Suciu).

"In [20] schemas are used for further optimization."  The idea: run the
query's path automaton over the *schema* instead of the data.  If no
accepting path exists in the schema, then -- provided the data conforms --
no accepting path exists in the data either, and the query is answered
empty without touching the database.  When the schema does admit the path,
the set of schema nodes reached restricts which data nodes can possibly be
answers (via the simulation classification), shrinking the search.

Soundness note: schema edges carry *predicates*, and the query regex's own
atoms are predicates too.  We need "could some label satisfy both?".  For
the predicate kinds in this codebase that intersection test is decidable
(:func:`predicates_may_overlap`); where it cannot be decided exactly we
answer True, which keeps pruning conservative (never wrong, sometimes
weaker).
"""

from __future__ import annotations

from ..automata.nfa import build_nfa
from ..automata.product import compile_rpq, rpq_nodes
from ..automata.regex import LabelPredicate, PathRegex, parse_path_regex
from ..core.graph import Graph
from ..core.labels import LabelKind
from .graphschema import GraphSchema

__all__ = ["predicates_may_overlap", "schema_reachable_states", "pruned_rpq_nodes"]


def predicates_may_overlap(a: LabelPredicate, b: LabelPredicate) -> bool:
    """Could any single label satisfy both predicates?  (Conservative.)"""
    if a.kind == "any" or b.kind == "any":
        return True
    if a.kind == "not" or b.kind == "not":
        # exact vs not-exact is decidable; other negations: be conservative
        inner_a = a.payload[0] if a.kind == "not" else None
        inner_b = b.payload[0] if b.kind == "not" else None
        if a.kind == "not" and b.is_exact:
            return not inner_a.matches(b.exact_label)
        if b.kind == "not" and a.is_exact:
            return not inner_b.matches(a.exact_label)
        return True
    if a.is_exact and b.is_exact:
        return a.exact_label == b.exact_label
    if a.is_exact:
        return b.matches(a.exact_label)
    if b.is_exact:
        return a.matches(b.exact_label)
    kind_a = _kind_of(a)
    kind_b = _kind_of(b)
    if kind_a is not None and kind_b is not None and kind_a is not kind_b:
        return False
    if a.kind == "type" or b.kind == "type":
        return True
    # two globs over the same kind: exact emptiness of the intersection of
    # two wildcard languages is decidable but fiddly; stay conservative
    # except for the easy literal-prefix disagreement.
    pat_a, pat_b = str(a.payload[0]), str(b.payload[0])
    pre_a = pat_a.split("*", 1)[0]
    pre_b = pat_b.split("*", 1)[0]
    overlap = min(len(pre_a), len(pre_b))
    return pre_a[:overlap] == pre_b[:overlap]


def _kind_of(p: LabelPredicate) -> LabelKind | None:
    if p.kind == "glob-symbol":
        return LabelKind.SYMBOL
    if p.kind == "glob-string":
        return LabelKind.STRING
    if p.kind == "type":
        return p.payload[0]
    return None


def schema_reachable_states(schema: GraphSchema, regex: "PathRegex | str") -> set[int]:
    """Schema nodes reachable by a path the regex *could* accept.

    Product of the query NFA with the schema graph, using
    :func:`predicates_may_overlap` as the step test.  An empty result
    proves (for conforming data) that the data-level query is empty.
    """
    if isinstance(regex, str):
        regex = parse_path_regex(regex)
    nfa = build_nfa(regex)
    start = (schema.root, nfa.initial())
    seen = {start}
    stack = [start]
    results: set[int] = set()
    if nfa.is_accepting(start[1]):
        results.add(schema.root)
    while stack:
        snode, states = stack.pop()
        for edge in schema.edges_from(snode):
            nxt_states = set()
            for q in states:
                for predicate, target in nfa.transitions[q]:
                    if predicates_may_overlap(predicate, edge.predicate):
                        nxt_states.add(target)
            closed = nfa.eps_closure(nxt_states)
            if not closed:
                continue
            config = (edge.dst, closed)
            if config in seen:
                continue
            seen.add(config)
            if nfa.is_accepting(closed):
                results.add(edge.dst)
            stack.append(config)
    return results


def pruned_rpq_nodes(
    data: Graph, schema: GraphSchema, pattern: "PathRegex | str"
) -> set[int]:
    """RPQ evaluation with the schema-prune fast path.

    Requires that ``data`` conforms to ``schema`` (the caller's contract,
    as in [20]).  If the schema rules the path out, returns empty with no
    data traversal; otherwise falls back to the ordinary product.
    """
    if not schema_reachable_states(schema, pattern):
        return set()
    return rpq_nodes(data, compile_rpq(pattern))
