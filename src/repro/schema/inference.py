"""Schema extraction: discovering structure in schema-free data (section 5).

"One of the main attractions of semistructured data is that it is
unconstrained.  Nevertheless, it may be appropriate to impose (or to
*discover*) some form of structure in the data."  This module discovers a
:class:`~repro.schema.graphschema.GraphSchema` from a database:

1. summarize the database (k-bisimulation quotient, k configurable --
   ``None`` means full bisimulation);
2. lift each summary edge to a schema predicate: symbols stay exact, base
   data generalizes to its *type test* (all the strings under ``Title``
   become one ``<string>`` edge).

The result always simulates the data it was inferred from (property-tested
conformance), and it is useful exactly as the paper says: browsing,
partial answers, and the passage back toward structured form
(:mod:`repro.schema.to_relational`).
"""

from __future__ import annotations

from ..automata.regex import LabelPredicate, exact, type_test
from ..core.bisim import reduce_graph
from ..core.graph import Graph
from ..core.labels import Label, LabelKind, sym
from .graphschema import GraphSchema
from .representative import representative_object

__all__ = ["infer_schema", "generalize_label"]


def generalize_label(label: Label) -> LabelPredicate:
    """The schema predicate for one observed label.

    Attribute names are structural and stay exact; data values generalize
    to their dynamic type, mirroring the static/dynamic analogy of
    section 2.
    """
    if label.is_symbol:
        return exact(label)
    return type_test(label.kind)


def infer_schema(graph: Graph, k: "int | None" = None) -> GraphSchema:
    """Infer a graph schema the database conforms to.

    ``k`` bounds the summarization depth (degree-k representative object);
    ``None`` uses the full bisimulation reduction, giving the most precise
    schema this construction can produce.

    Generalization happens *before* summarization: every base-data label
    is first abstracted to a per-kind marker, so ``Title: "Casablanca"``
    and ``Title: "Vertigo"`` collapse into one ``Title.<string>`` schema
    edge -- this is what keeps inferred schemas small on regular data.
    Generalizing can only loosen the summary, so conformance by simulation
    is guaranteed.
    """
    kind_marker = {kind: sym(f"@{kind.value}") for kind in LabelKind}
    marker_kind = {marker: kind for kind, marker in kind_marker.items()}
    abstracted = graph.map_labels(
        lambda lab: kind_marker[lab.kind] if lab.is_base else lab
    )
    summary = (
        reduce_graph(abstracted) if k is None else representative_object(abstracted, k)
    )
    schema = GraphSchema()
    node_of = {n: schema.new_node() for n in sorted(summary.reachable())}
    schema.set_root(node_of[summary.root])
    seen: set[tuple[int, LabelPredicate, int]] = set()
    for n in sorted(summary.reachable()):
        for edge in summary.edges_from(n):
            kind = marker_kind.get(edge.label)
            predicate = exact(edge.label) if kind is None else type_test(kind)
            key = (node_of[n], predicate, node_of[edge.dst])
            if key not in seen:
                seen.add(key)
                schema.add_edge(*key)
    return schema
