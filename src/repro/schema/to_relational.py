"""The passage back from semistructured to structured data (section 5).

"[Schemas] will also be needed for the passage back from semistructured to
structured data, for which a richer notion of schema is necessary.  This is
an area in which much further work is needed."  This module implements the
workable core of that passage: detect *table-shaped* regions of a graph --
a node whose children all arrive via one repeated symbol and all look like
flat records -- and extract them as relations.

Total structure is not required: records may miss attributes (the
semistructured reality), and the extraction either pads with ``None``
(``allow_missing=True``, producing a structured view with nulls) or skips
the non-conforming collection entirely (strict mode, reporting why).

:func:`record_regions` is the same detection with the node identities
kept: per ``(collection node, member symbol)`` pair, the record rows and
their attribute/value/leaf node ids.  That is the raw material of the
SQL backend's DataGuide-derived *wide tables* -- a region is exactly a
graph fragment that denormalizes losslessly into one relational table,
so a path query whose tail lands inside a region can be answered by a
table scan instead of a graph traversal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.graph import Graph
from ..relational.relation import Relation

__all__ = [
    "ExtractionReport",
    "extract_tables",
    "RecordRow",
    "RecordRegion",
    "RegionReport",
    "record_regions",
]


@dataclass
class ExtractionReport:
    """Outcome of a structure-recovery pass."""

    tables: dict[str, Relation] = field(default_factory=dict)
    skipped: list[str] = field(default_factory=list)


def _scalar_value(graph: Graph, node: int):
    """The scalar a node encodes as ``{v: {}}``, else a no-value marker."""
    edges = graph.edges_from(node)
    if len(edges) == 1 and edges[0].label.is_base and graph.out_degree(edges[0].dst) == 0:
        return edges[0].label.value
    return _NOT_SCALAR


_NOT_SCALAR = object()


def _record_of(graph: Graph, node: int) -> "dict[str, object] | None":
    """Flat record at ``node``: every edge a symbol to a scalar, at most
    one per attribute name.  ``None`` if the node is not record-shaped."""
    record: dict[str, object] = {}
    for edge in graph.edges_from(node):
        if not edge.label.is_symbol:
            return None
        value = _scalar_value(graph, edge.dst)
        if value is _NOT_SCALAR:
            return None
        name = str(edge.label.value)
        if name in record:
            return None  # repeated attribute: set-valued, not relational
        record[name] = value
    return record


def extract_tables(graph: Graph, allow_missing: bool = False) -> ExtractionReport:
    """Find and extract every table-shaped collection in the graph.

    A *collection* is a node all of whose outgoing edges carry the same
    symbol (at least two of them) and whose targets are flat records.  The
    extracted table is named by the incoming edge that reaches the
    collection node (``Movies`` for ``root --Movies--> o --tuple--> ...``),
    which also covers the image of
    :func:`repro.relational.encode.relational_to_graph`.
    """
    report = ExtractionReport()
    reach = graph.reachable()
    incoming: dict[int, str] = {}
    for node in reach:
        for edge in graph.edges_from(node):
            if edge.label.is_symbol and edge.dst not in incoming:
                incoming[edge.dst] = str(edge.label.value)
    for node in sorted(reach):
        edges = graph.edges_from(node)
        if len(edges) < 2:
            continue
        labels = {e.label for e in edges}
        if len(labels) != 1 or not next(iter(labels)).is_symbol:
            continue
        name = incoming.get(node, str(next(iter(labels)).value))
        records = [_record_of(graph, e.dst) for e in edges]
        if any(r is None for r in records):
            report.skipped.append(f"{name}: members are not flat records")
            continue
        attrs = sorted({a for r in records for a in r})  # type: ignore[union-attr]
        if not allow_missing:
            partial = [r for r in records if set(r) != set(attrs)]  # type: ignore[arg-type]
            if partial:
                report.skipped.append(
                    f"{name}: {len(partial)} record(s) missing attributes "
                    "(semistructured; pass allow_missing=True for a null-padded view)"
                )
                continue
        rows = [tuple(r.get(a) for a in attrs) for r in records]  # type: ignore[union-attr]
        if name in report.tables:
            existing = report.tables[name]
            if existing.schema == tuple(attrs):
                rows.extend(existing.rows)
            else:
                report.skipped.append(f"{name}: conflicting schemas across collections")
                continue
        report.tables[name] = Relation(tuple(attrs), rows)
    return report


# ---------------------------------------------------------------------------
# Record regions: the identity-preserving variant feeding the wide tables.


@dataclass(frozen=True)
class RecordRow:
    """One record-shaped member: its node and attribute cells.

    ``attrs`` holds ``(attribute, value_node, value, leaf_node)`` per
    attribute edge -- the full ``record --attr--> {value: {}}`` spine,
    so a query answering from the denormalized row can still return the
    node ids the graph traversal would have returned.
    """

    node: int
    attrs: tuple[tuple[str, int, object, int], ...]


@dataclass(frozen=True)
class RecordRegion:
    """Every member of ``collection`` under ``member`` is a flat record."""

    collection: int
    member: str
    rows: tuple[RecordRow, ...]


@dataclass
class RegionReport:
    """All record regions of a graph, plus the soundness complement.

    ``uncovered`` lists the ``(node, member)`` pairs that *have* member
    edges but whose targets are not all record-shaped.  A consumer that
    wants to answer ``...member...`` queries from the regions must check
    its source nodes against this set: a node absent from both sides
    simply has no such edges and contributes nothing either way.
    """

    regions: list[RecordRegion] = field(default_factory=list)
    uncovered: set[tuple[int, str]] = field(default_factory=set)

    def covers(self, node: int, member: str) -> bool:
        return (node, member) not in self.uncovered


def _record_row(graph: Graph, node: int) -> "RecordRow | None":
    """The node-id-preserving twin of :func:`_record_of`."""
    attrs: list[tuple[str, int, object, int]] = []
    seen: set[str] = set()
    for edge in graph.edges_from(node):
        if not edge.label.is_symbol:
            return None
        value_edges = graph.edges_from(edge.dst)
        if (
            len(value_edges) != 1
            or not value_edges[0].label.is_base
            or graph.out_degree(value_edges[0].dst) != 0
        ):
            return None
        name = str(edge.label.value)
        if name in seen:
            return None  # repeated attribute: set-valued, not relational
        seen.add(name)
        attrs.append((name, edge.dst, value_edges[0].label.value, value_edges[0].dst))
    return RecordRow(node, tuple(attrs))


def record_regions(graph: Graph) -> RegionReport:
    """Find every ``(collection, member symbol)`` record region.

    Unlike :func:`extract_tables` this keeps single-member collections
    (soundness, not table-worthiness, is the criterion), dedupes shared
    record nodes per region, and runs one pass over the reachable edge
    set -- O(edges) total, paid once per snapshot by the SQL backend.
    """
    report = RegionReport()
    row_cache: dict[int, "RecordRow | None"] = {}

    def row_of(node: int) -> "RecordRow | None":
        if node not in row_cache:
            row_cache[node] = _record_row(graph, node)
        return row_cache[node]

    for node in sorted(graph.reachable()):
        by_member: dict[str, list[int]] = {}
        for edge in graph.edges_from(node):
            if edge.label.is_symbol:
                by_member.setdefault(str(edge.label.value), []).append(edge.dst)
        for member in sorted(by_member):
            rows = []
            for target in dict.fromkeys(by_member[member]):
                row = row_of(target)
                if row is None:
                    break
                rows.append(row)
            else:
                report.regions.append(RecordRegion(node, member, tuple(rows)))
                continue
            report.uncovered.add((node, member))
    return report
