"""Simulation: the conformance relation between data and schema.

Section 5: "In [8] a schema is defined as a graph whose edges are labeled
with predicates and the property of *simulation* is used to describe the
relationship between data and schema."  A data node ``d`` is simulated by a
schema node ``s`` when every edge out of ``d`` can be matched by some
predicate edge out of ``s`` whose target simulates the edge's target::

    d <= s   iff   for all d --l--> d'  exists  s --p--> s'
                   with p(l) and d' <= s'

Data *conforms* to a schema when the data root is simulated by the schema
root.  Simulation is weaker than bisimulation (it only constrains, never
requires, structure), which is exactly why it fits schemas that "only place
loose constraints on the data".

The computation is the standard coinductive fixpoint: start from the full
relation and delete violating pairs until stable -- ``O(|sim| * E_d * E_s)``
worst case, fine at tutorial scale.
"""

from __future__ import annotations

from typing import Callable

from ..core.graph import Graph
from ..core.labels import Label

__all__ = ["maximal_simulation", "simulates", "graph_simulation"]

#: edge-match oracle: does schema edge j accept data label l?
EdgeMatcher = Callable[[int, Label], "list[int]"]


def maximal_simulation(
    data: Graph,
    schema_nodes: "list[int]",
    schema_moves: Callable[[int, Label], "list[int]"],
) -> set[tuple[int, int]]:
    """The largest simulation of ``data`` by an abstract schema graph.

    ``schema_moves(s, l)`` returns the schema nodes reachable from schema
    node ``s`` by an edge whose predicate accepts label ``l`` (this
    indirection lets :class:`~repro.schema.graphschema.GraphSchema` and
    plain graphs share the algorithm).

    Returns all pairs ``(data node, schema node)`` in the relation.
    """
    data_nodes = sorted(data.reachable())
    sim: set[tuple[int, int]] = {
        (d, s) for d in data_nodes for s in schema_nodes
    }
    changed = True
    while changed:
        changed = False
        for d in data_nodes:
            for s in schema_nodes:
                if (d, s) not in sim:
                    continue
                ok = True
                for edge in data.edges_from(d):
                    if not any(
                        (edge.dst, s2) in sim for s2 in schema_moves(s, edge.label)
                    ):
                        ok = False
                        break
                if not ok:
                    sim.discard((d, s))
                    changed = True
    return sim


def simulates(
    data: Graph,
    schema_nodes: "list[int]",
    schema_moves: Callable[[int, Label], "list[int]"],
    data_node: int,
    schema_node: int,
) -> bool:
    """Is one particular data node simulated by one schema node?"""
    return (data_node, schema_node) in maximal_simulation(
        data, schema_nodes, schema_moves
    )


def graph_simulation(small: Graph, big: Graph) -> set[tuple[int, int]]:
    """Simulation between two plain data graphs (exact label matching).

    ``(a, b)`` in the result means node ``a`` of ``small`` is simulated by
    node ``b`` of ``big``: everything ``a`` can do, ``b`` can do.  Used to
    compare schemas with each other and in the E10 equality study
    (simulation vs bisimulation vs automata equivalence).
    """
    big_nodes = sorted(big.reachable())

    def moves(s: int, label: Label) -> list[int]:
        return [e.dst for e in big.edges_from(s) if e.label == label]

    return maximal_simulation(small, big_nodes, moves)
