"""Strong DataGuides: concise structural summaries (section 5, [22]).

Goldman & Widom's DataGuide is a *deterministic* summary of a database:
every label path from the root appears exactly once, and each DataGuide
node remembers the set of database nodes (the *target set*) that its path
reaches.  The paper contrasts this automata-equivalence-based notion with
the weaker simulation-based schemas: the DataGuide is obtained by the
classical NFA->DFA subset construction applied to the data graph itself,
treating database nodes as NFA states.

Uses: "schemas are useful for browsing and for providing partial answers to
queries" -- the DataGuide answers *path existence* and *path counting*
without touching the database, and its target sets seed path-query
evaluation (experiment E7).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from ..core.graph import Graph
from ..core.labels import Label

__all__ = [
    "DataGuide",
    "GuideTooLargeError",
    "paths_equivalent",
    "rpq_via_dataguide",
    "guide_product",
]


class GuideTooLargeError(RuntimeError):
    """Subset construction exceeded the caller's ``max_states`` budget.

    The strong DataGuide of a highly-connected graph can be exponentially
    larger than the graph itself; callers that build guides opportunistically
    (the query planner) pass a budget and treat this as "no summary
    available" instead of hanging.
    """


class DataGuide:
    """The strong DataGuide of a rooted edge-labeled graph.

    ``max_states`` bounds the subset construction: when the guide would
    exceed that many states, :class:`GuideTooLargeError` is raised and no
    partial guide escapes.  ``None`` (the default) means unbounded.
    """

    def __init__(self, graph: Graph, *, max_states: "int | None" = None) -> None:
        self._graph = graph
        self._states: list[frozenset[int]] = []
        self._state_ids: dict[frozenset[int], int] = {}
        self._transitions: list[dict[Label, int]] = []
        start = frozenset({graph.root})
        self._intern(start)
        queue = deque([start])
        while queue:
            subset = queue.popleft()
            sid = self._state_ids[subset]
            moves: dict[Label, set[int]] = {}
            for node in subset:
                for edge in graph.edges_from(node):
                    moves.setdefault(edge.label, set()).add(edge.dst)
            for label in sorted(moves, key=Label.sort_key):
                target = frozenset(moves[label])
                if target not in self._state_ids:
                    if max_states is not None and len(self._states) >= max_states:
                        raise GuideTooLargeError(
                            f"DataGuide exceeded {max_states} states "
                            f"(graph has {graph.num_nodes} nodes)"
                        )
                    self._intern(target)
                    queue.append(target)
                self._transitions[sid][label] = self._state_ids[target]

    def _intern(self, subset: frozenset[int]) -> int:
        sid = len(self._states)
        self._state_ids[subset] = sid
        self._states.append(subset)
        self._transitions.append({})
        return sid

    # -- incremental maintenance -------------------------------------------------

    def refresh(self, new_edges) -> "DataGuide":
        """Fold newly visible edges in without a full subset construction.

        A new edge ``src --l--> dst`` only changes the rows of states
        whose subset contains ``src`` (their ``l``-move gains ``dst``);
        those rows are recomputed from the live graph, interning any
        subsets that did not exist before.  Freshly interned states get
        their rows computed the same way, cascading until closed --
        every *other* state's subset is unchanged, so its row is still
        correct.  Unreferenced old states are then garbage-collected so
        ``num_states``/``all_paths`` match a cold rebuild exactly
        (property-tested in the MVCC suite).

        Cost is proportional to the affected region, not the database;
        the E18 bench measures the win over rebuild-on-stale.
        """
        new_edges = list(new_edges)
        if not new_edges:
            return self
        graph = self._graph
        srcs = {edge.src for edge in new_edges}
        queue = deque(
            sid for sid, subset in enumerate(self._states) if subset & srcs
        )
        scheduled = set(queue)
        while queue:
            sid = queue.popleft()
            moves: dict[Label, set[int]] = {}
            for node in self._states[sid]:
                for edge in graph.edges_from(node):
                    moves.setdefault(edge.label, set()).add(edge.dst)
            row: dict[Label, int] = {}
            for label in sorted(moves, key=Label.sort_key):
                target = frozenset(moves[label])
                tid = self._state_ids.get(target)
                if tid is None:
                    tid = self._intern(target)
                    scheduled.add(tid)
                    queue.append(tid)
                row[label] = tid
            self._transitions[sid] = row
        self._compact()
        return self

    def _compact(self) -> None:
        """Drop states unreachable from the start state and renumber."""
        order: list[int] = [0]
        remap = {0: 0}
        for sid in order:
            for tid in self._transitions[sid].values():
                if tid not in remap:
                    remap[tid] = len(order)
                    order.append(tid)
        if len(order) == len(self._states):
            return
        self._states = [self._states[sid] for sid in order]
        self._transitions = [
            {label: remap[tid] for label, tid in self._transitions[sid].items()}
            for sid in order
        ]
        self._state_ids = {subset: i for i, subset in enumerate(self._states)}

    def equivalent_to(self, other: "DataGuide") -> bool:
        """Same path language *and* same target sets: a synchronized walk.

        This is the refresh-vs-cold-rebuild checker: two strong
        DataGuides of the same database must agree on every path's
        existence and extent, whatever their internal state numbering.
        """
        seen = {(0, 0)}
        queue = deque([(0, 0)])
        while queue:
            s1, s2 = queue.popleft()
            if self._states[s1] != other._states[s2]:
                return False
            t1, t2 = self._transitions[s1], other._transitions[s2]
            if set(t1) != set(t2):
                return False
            for label, n1 in t1.items():
                pair = (n1, t2[label])
                if pair not in seen:
                    seen.add(pair)
                    queue.append(pair)
        return True

    # -- queries ---------------------------------------------------------------

    @property
    def num_states(self) -> int:
        return len(self._states)

    @property
    def num_transitions(self) -> int:
        return sum(len(t) for t in self._transitions)

    def target_set(self, path: tuple[Label, ...]) -> frozenset[int]:
        """Database nodes reached by ``path`` (empty when path absent).

        Cost: one dict lookup per step, independent of database size --
        the whole point of the structure.
        """
        state = 0
        for label in path:
            nxt = self._transitions[state].get(label)
            if nxt is None:
                return frozenset()
            state = nxt
        return self._states[state]

    def path_exists(self, path: tuple[Label, ...]) -> bool:
        state = 0
        for label in path:
            nxt = self._transitions[state].get(label)
            if nxt is None:
                return False
            state = nxt
        return True

    def labels_after(self, path: tuple[Label, ...]) -> list[Label]:
        """The labels that can extend ``path`` -- the browsing aid the
        DataGuide paper motivates (query formulation without a schema)."""
        state = 0
        for label in path:
            nxt = self._transitions[state].get(label)
            if nxt is None:
                return []
            state = nxt
        return sorted(self._transitions[state], key=Label.sort_key)

    def all_paths(self, max_length: int) -> Iterator[tuple[Label, ...]]:
        """Every distinct label path up to ``max_length`` (each once)."""
        queue: deque[tuple[tuple[Label, ...], int]] = deque([((), 0)])
        while queue:
            path, state = queue.popleft()
            yield path
            if len(path) >= max_length:
                continue
            for label in sorted(self._transitions[state], key=Label.sort_key):
                queue.append((path + (label,), self._transitions[state][label]))

    def transitions_of(self, state: int) -> dict[Label, int]:
        return dict(self._transitions[state])

    def extent(self, state: int) -> frozenset[int]:
        """The target set of a guide state: the database nodes its path reaches."""
        return self._states[state]

    def extent_sizes(self) -> list[int]:
        """``len(extent(s))`` per state -- the statistics object's raw input."""
        return [len(s) for s in self._states]

    def as_graph(self) -> Graph:
        """The DataGuide itself as an edge-labeled graph (it is one)."""
        g = Graph()
        nodes = [g.new_node() for _ in self._states]
        g.set_root(nodes[0])
        for sid, moves in enumerate(self._transitions):
            for label in sorted(moves, key=Label.sort_key):
                g.add_edge(nodes[sid], label, nodes[moves[label]])
        return g


def paths_equivalent(g1: Graph, g2: Graph) -> bool:
    """Automata equivalence: do two graphs have the same label paths?

    This is the *stronger* relationship section 5 attributes to [31, 22]
    (DataGuides / representative objects) in contrast to simulation: the
    two databases are equivalent as automata over label paths.  Decided by
    a synchronized walk over the two strong DataGuides -- both
    deterministic, so language equality is a product reachability check.

    Bisimilar graphs are always path-equivalent; the converse fails
    (path equivalence forgets branching structure), and experiment E10
    measures both directions.
    """
    d1, d2 = DataGuide(g1), DataGuide(g2)
    seen = {(0, 0)}
    queue = deque([(0, 0)])
    while queue:
        s1, s2 = queue.popleft()
        t1 = d1.transitions_of(s1)
        t2 = d2.transitions_of(s2)
        if set(t1) != set(t2):
            return False
        for label, n1 in t1.items():
            pair = (n1, t2[label])
            if pair not in seen:
                seen.add(pair)
                queue.append(pair)
    return True


def rpq_via_dataguide(guide: DataGuide, pattern) -> frozenset[int]:
    """Answer a regular path query from the DataGuide alone.

    Correctness: the strong DataGuide is deterministic and complete for
    the database's label paths, and each guide state remembers exactly the
    database nodes its path reaches.  A node answers the RPQ iff some
    matching path reaches it iff it lies in the target set of some guide
    state reachable under the query automaton -- so running the product
    against the (small) guide instead of the (large) database is *exact*,
    not approximate.  This is the query-optimization use of DataGuides the
    paper points at via [22], and experiment E7 measures the win.

    ``pattern`` may be a string, a parsed regex, or a precompiled
    :class:`~repro.automata.dfa.LazyDfa` (the planner passes its cached
    plan so the guide product and any fallback traversal share one
    automaton).
    """
    from ..automata.product import compile_rpq

    dfa = compile_rpq(pattern)
    answers, _seen = guide_product(guide, dfa)
    return frozenset(answers)


def guide_product(guide: DataGuide, dfa) -> tuple[set[int], set[tuple[int, int]]]:
    """The guide x DFA product: answer nodes plus explored configurations.

    The ``seen`` set of ``(guide state, dfa state)`` pairs is what the
    planner's profiled twin reports as its product work -- the whole point
    of the strategy is that this set is tiny relative to the data-graph
    product it replaces.
    """
    answers: set[int] = set()
    start = (0, dfa.start)
    seen = {start}
    stack = [start]
    if dfa.is_accepting(dfa.start):
        answers.update(guide._states[0])
    while stack:
        state, q = stack.pop()
        for label, nxt in guide._transitions[state].items():
            q2 = dfa.step(q, label)
            if dfa.is_dead(q2):
                continue
            config = (nxt, q2)
            if config in seen:
                continue
            seen.add(config)
            if dfa.is_accepting(q2):
                answers.update(guide._states[nxt])
            stack.append(config)
    return answers, seen
