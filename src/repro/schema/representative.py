"""Representative objects: bounded-depth structural summaries (section 5, [31]).

Nestorov-Ullman-Wiener-Chawathe: a *degree-k representative object*
concisely represents all label paths of length up to ``k`` through every
object of the database.  The construction here is the classical one by
**k-bisimulation**: two nodes are k-equivalent when their outgoing label
trees agree to depth k; the degree-k RO is the quotient of the database by
that equivalence.

* ``k = 0`` collapses everything to one node;
* growing ``k`` refines the summary monotonically;
* in the limit (k >= number of nodes) the quotient equals the full
  bisimulation reduction of :func:`repro.core.bisim.reduce_graph`, the
  "full representative object".

The RO supports the same path-existence queries as a DataGuide but trades
exactness beyond depth k for a size that is at most the database's, often
far smaller (experiment E7/E10 compare them).
"""

from __future__ import annotations

from ..core.graph import Graph
from ..core.labels import Label

__all__ = ["k_bisimulation", "representative_object", "ro_path_exists"]


def k_bisimulation(graph: Graph, k: int) -> dict[int, int]:
    """Partition the reachable nodes by depth-``k`` bisimilarity.

    Returns node -> block id.  Round ``i`` refines by the (label, block)
    signature of round ``i-1``; after ``k`` rounds two nodes share a block
    iff their unfoldings agree to depth ``k``.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    reach = sorted(graph.reachable())
    block = {n: 0 for n in reach}
    for _ in range(k):
        renumber: dict[tuple, int] = {}
        nxt: dict[int, int] = {}
        for n in reach:
            signature = (
                block[n],
                frozenset((e.label, block[e.dst]) for e in graph.edges_from(n)),
            )
            if signature not in renumber:
                renumber[signature] = len(renumber)
            nxt[n] = renumber[signature]
        if len(set(nxt.values())) == len(set(block.values())):
            block = nxt
            break
        block = nxt
    return block


def representative_object(graph: Graph, k: int) -> Graph:
    """The degree-``k`` representative object: the k-bisimulation quotient.

    Every label path of length <= k existing in the database exists in the
    RO and vice versa (soundness and completeness to depth k); longer
    paths in the RO may be spurious -- that is the advertised trade-off.
    """
    block = k_bisimulation(graph, k)
    out = Graph()
    node_of: dict[int, int] = {}
    for n in sorted(graph.reachable()):
        b = block[n]
        if b not in node_of:
            node_of[b] = out.new_node()
    out.set_root(node_of[block[graph.root]])
    seen: set[tuple[int, Label, int]] = set()
    for n in sorted(graph.reachable()):
        src = node_of[block[n]]
        for e in graph.edges_from(n):
            key = (src, e.label, node_of[block[e.dst]])
            if key not in seen:
                seen.add(key)
                out.add_edge(*key)
    return out


def ro_path_exists(ro: Graph, path: tuple[Label, ...]) -> bool:
    """Does a label path exist in the representative object?

    Sound and complete for ``len(path) <= k`` of the RO's construction;
    beyond that it may report paths the database does not have (but never
    misses one the database does have).
    """
    frontier = {ro.root}
    for label in path:
        nxt: set[int] = set()
        for node in frontier:
            for edge in ro.edges_from(node):
                if edge.label == label:
                    nxt.add(edge.dst)
        if not nxt:
            return False
        frontier = nxt
    return True
