"""An ACeDB-style schema language (section 1.1).

"[ACeDB] has a schema language that resembles that of an object-oriented
DBMS; but this schema imposes only loose constraints on the data."  This
module implements a small dialect of ACeDB's *model file* syntax and
compiles it into the simulation-based :class:`~repro.schema.graphschema.
GraphSchema`, making the paper's observation executable: the same text
that *looks* like class definitions yields constraints that are only
upper bounds.

Dialect (one class per ``?Name`` block; indentation is free-form)::

    ?Locus   Locus_name  Text
             Phenotype   Text
             Reference   ?Paper
             Maps_to     ?Map
             Clone       Tree        // arbitrary-depth subtree allowed

    ?Paper   Author      Text
             Year        Int

    ?Map     Map_name    Text

Value types: ``Text``, ``Int``, ``Float``, ``Bool`` (type-test leaves),
``Tree`` (a wildcard self-loop -- "trees of arbitrary depth"), or
``?Class`` (a reference to another class's node, cycles welcome).
``//`` starts a comment.  A database conforms when every root edge named
like a class (``Locus`` edges to Locus-shaped objects...) simulates into
the compiled schema; unknown attributes violate it, *missing* ones never
do -- the looseness the paper describes.
"""

from __future__ import annotations

from ..automata.regex import any_label, exact, type_test
from ..core.labels import LabelKind
from .graphschema import GraphSchema

__all__ = ["parse_acedb_model", "AcedbModelError"]


class AcedbModelError(ValueError):
    """Raised on malformed model files."""


_VALUE_TYPES = {
    "Text": LabelKind.STRING,
    "Int": LabelKind.INT,
    "Float": LabelKind.REAL,
    "Bool": LabelKind.BOOL,
}


def _strip_comment(line: str) -> str:
    cut = line.find("//")
    return line if cut < 0 else line[:cut]


def parse_acedb_model(text: str) -> GraphSchema:
    """Compile an ACeDB-style model file into a graph schema.

    The schema root gets one edge per class (labeled by the class name);
    each attribute line adds an edge from the class node to a value node
    of the declared type, or to another class's node for ``?Class``
    references.
    """
    # pass 1: collect class blocks
    classes: dict[str, list[tuple[str, str]]] = {}
    current: "str | None" = None
    for raw in text.splitlines():
        line = _strip_comment(raw).strip()
        if not line:
            continue
        tokens = line.split()
        if tokens[0].startswith("?"):
            current = tokens[0][1:]
            if not current:
                raise AcedbModelError("empty class name '?'")
            if current in classes:
                raise AcedbModelError(f"class ?{current} defined twice")
            classes[current] = []
            tokens = tokens[1:]
        if not tokens:
            continue
        if current is None:
            raise AcedbModelError(f"attribute line before any class: {line!r}")
        if len(tokens) != 2:
            raise AcedbModelError(
                f"expected 'Attribute Type' in class ?{current}, got {line!r}"
            )
        classes[current].append((tokens[0], tokens[1]))
    if not classes:
        raise AcedbModelError("model file defines no classes")

    # pass 2: build the schema graph
    schema = GraphSchema()
    root = schema.new_node()
    schema.set_root(root)
    class_node = {name: schema.new_node() for name in classes}
    for name, node in class_node.items():
        schema.add_edge(root, exact(name), node)
    for name, attributes in classes.items():
        node = class_node[name]
        for attr, value_type in attributes:
            if value_type.startswith("?"):
                target_class = value_type[1:]
                if target_class not in class_node:
                    raise AcedbModelError(
                        f"class ?{name} references undefined ?{target_class}"
                    )
                schema.add_edge(node, exact(attr), class_node[target_class])
            elif value_type == "Tree":
                anything = schema.new_node()
                schema.add_edge(node, exact(attr), anything)
                schema.add_edge(anything, any_label(), anything)
            elif value_type in _VALUE_TYPES:
                holder = schema.new_node()
                leaf = schema.new_node()
                schema.add_edge(node, exact(attr), holder)
                schema.add_edge(holder, type_test(_VALUE_TYPES[value_type]), leaf)
            else:
                raise AcedbModelError(
                    f"unknown value type {value_type!r} for ?{name}.{attr}"
                )
    return schema
