"""Adding structure to semistructured data (section 5).

* :mod:`~repro.schema.simulation` -- the simulation preorder;
* :mod:`~repro.schema.graphschema` -- predicate-labeled graph schemas and
  conformance;
* :mod:`~repro.schema.prune` -- schema-based query pruning;
* :mod:`~repro.schema.dataguide` -- strong DataGuides (automata
  equivalence / determinization);
* :mod:`~repro.schema.representative` -- degree-k representative objects;
* :mod:`~repro.schema.inference` -- schema discovery from data;
* :mod:`~repro.schema.to_relational` -- the passage back to structured
  (relational) form.
"""

from .acedb_schema import AcedbModelError, parse_acedb_model
from .dataguide import DataGuide, paths_equivalent, rpq_via_dataguide
from .graphschema import GraphSchema, SchemaEdge, SchemaError
from .inference import generalize_label, infer_schema
from .prune import predicates_may_overlap, pruned_rpq_nodes, schema_reachable_states
from .representative import k_bisimulation, representative_object, ro_path_exists
from .simulation import graph_simulation, maximal_simulation
from .to_relational import (
    ExtractionReport,
    RecordRegion,
    RecordRow,
    RegionReport,
    extract_tables,
    record_regions,
)

__all__ = [
    "maximal_simulation",
    "graph_simulation",
    "GraphSchema",
    "SchemaEdge",
    "SchemaError",
    "DataGuide",
    "paths_equivalent",
    "rpq_via_dataguide",
    "predicates_may_overlap",
    "schema_reachable_states",
    "pruned_rpq_nodes",
    "k_bisimulation",
    "representative_object",
    "ro_path_exists",
    "infer_schema",
    "generalize_label",
    "ExtractionReport",
    "extract_tables",
    "RecordRow",
    "RecordRegion",
    "RegionReport",
    "record_regions",
    "parse_acedb_model",
    "AcedbModelError",
]
