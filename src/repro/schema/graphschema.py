"""Graph schemas: predicate-labeled graphs constraining data (section 5).

Following Buneman-Davidson-Fernandez-Suciu (ICDT '97, [8] in the paper): a
schema is a rooted graph whose edges carry *predicates* on labels, and a
database conforms to the schema iff it is simulated by it.  Because
simulation only says "every edge the data has must be allowed", schemas
place exactly the "loose constraints" the paper attributes to ACeDB: extra
structure in the schema does not force anything to exist in the data.

Schemas are built programmatically or from a nested-dict spec whose edge
keys use the path-regex *atom* syntax (one predicate per edge)::

    schema = GraphSchema.from_spec({
        "Entry": {
            "Movie": {"Title": "<string>", "Cast": "_", "Director": "<string>"},
            "`TV Show`": {"Title": "<string>", "act%": "_"},
        }
    })
"""

from __future__ import annotations

from dataclasses import dataclass

from ..automata.regex import AtomRE, LabelPredicate, parse_path_regex
from ..core.graph import Graph
from ..core.labels import Label
from .simulation import maximal_simulation

__all__ = ["SchemaEdge", "GraphSchema", "SchemaError"]


class SchemaError(ValueError):
    """Raised on malformed schema specifications."""


@dataclass(frozen=True, slots=True)
class SchemaEdge:
    src: int
    predicate: LabelPredicate
    dst: int


class GraphSchema:
    """A rooted graph with predicate-labeled edges."""

    def __init__(self) -> None:
        self._adj: dict[int, list[SchemaEdge]] = {}
        self._root: int | None = None
        self._next = 0

    # -- construction ---------------------------------------------------------

    def new_node(self) -> int:
        node = self._next
        self._next += 1
        self._adj[node] = []
        return node

    def add_edge(self, src: int, predicate: LabelPredicate, dst: int) -> None:
        if src not in self._adj or dst not in self._adj:
            raise SchemaError(f"unknown schema node in edge {src}->{dst}")
        self._adj[src].append(SchemaEdge(src, predicate, dst))

    def set_root(self, node: int) -> None:
        if node not in self._adj:
            raise SchemaError(f"unknown schema root {node}")
        self._root = node

    @property
    def root(self) -> int:
        if self._root is None:
            raise SchemaError("schema has no root")
        return self._root

    def nodes(self) -> list[int]:
        return list(self._adj)

    def edges_from(self, node: int) -> tuple[SchemaEdge, ...]:
        return tuple(self._adj[node])

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return sum(len(v) for v in self._adj.values())

    # -- the spec DSL -----------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: dict) -> "GraphSchema":
        """Build a tree-shaped schema from nested dicts.

        Keys are single path-regex atoms (exact symbols, ``%`` globs,
        ``<type>`` tests, ``_``); values are nested dicts or ``None`` /
        ``"_"`` for "anything below" (a wildcard self-loop leaf).
        """
        schema = cls()
        root = schema.new_node()
        schema.set_root(root)
        schema._build_spec(root, spec)
        return schema

    def _build_spec(self, node: int, spec: dict) -> None:
        from ..automata.regex import any_label

        for key, sub in spec.items():
            regex = parse_path_regex(str(key))
            if not isinstance(regex, AtomRE):
                raise SchemaError(
                    f"schema edge key {key!r} must be a single label atom"
                )
            child = self.new_node()
            self.add_edge(node, regex.predicate, child)
            if isinstance(sub, dict):
                self._build_spec(child, sub)
            elif sub in (None, "_"):
                # anything below: a wildcard self-loop absorbs all subtrees
                self.add_edge(child, any_label(), child)
            else:
                raise SchemaError(f"bad schema spec value {sub!r} under {key!r}")

    # -- conformance ----------------------------------------------------------------

    def moves(self, node: int, label: Label) -> list[int]:
        """Schema nodes reachable from ``node`` by an edge accepting ``label``."""
        return [e.dst for e in self._adj[node] if e.predicate.matches(label)]

    def simulation_with(self, data: Graph) -> set[tuple[int, int]]:
        """All (data node, schema node) simulation pairs."""
        return maximal_simulation(data, self.nodes(), self.moves)

    def conforms(self, data: Graph) -> bool:
        """Does the database conform (root simulated by schema root)?"""
        return (data.root, self.root) in self.simulation_with(data)

    def classify(self, data: Graph) -> dict[int, set[int]]:
        """data node -> schema nodes simulating it (the typing the paper's
        optimization work [20] exploits)."""
        out: dict[int, set[int]] = {n: set() for n in data.reachable()}
        for d, s in self.simulation_with(data):
            out[d].add(s)
        return out

    def violations(self, data: Graph, limit: int = 10) -> list[str]:
        """Human-readable reasons why conformance fails (empty if it holds).

        The walk follows the *intended* typing from (data root, schema
        root): wherever a pair fails to simulate, either some edge has no
        allowed schema move (reported), or the failure lies deeper (the
        walk descends).  The diagnosis pinpoints real offending edges even
        when some unrelated permissive schema node (a wildcard) happens to
        simulate the node globally.
        """
        sim = self.simulation_with(data)
        if (data.root, self.root) in sim:
            return []
        problems: list[str] = []
        seen: set[tuple[int, int]] = set()
        stack: list[tuple[int, int]] = [(data.root, self.root)]
        while stack and len(problems) < limit:
            d, s = stack.pop()
            if (d, s) in seen or (d, s) in sim:
                continue
            seen.add((d, s))
            for edge in data.edges_from(d):
                targets = self.moves(s, edge.label)
                if not targets:
                    problems.append(
                        f"edge {edge.label!r} at data node {d} is not allowed "
                        f"at schema position {s}"
                    )
                elif not any((edge.dst, s2) in sim for s2 in targets):
                    stack.extend((edge.dst, s2) for s2 in targets)
        if not problems:
            problems.append("root is not simulated by the schema root")
        return problems
