"""Graph statistics for cost-based query planning.

The Lorel optimizer's original clause costs were shape heuristics: an
exact label step cost 1, a star 16, independent of the data.  On real
data the numbers that matter are *frequencies*: how many edges carry each
label, how large the DataGuide extents are, how selective each value is.
A :class:`GraphStatistics` snapshot collects exactly those at freeze
time (one O(edges) pass -- the frozen layout has the label histogram
nearly for free) and exposes a cardinality estimator over the path-regex
AST that :func:`repro.lorel.optimizer.clause_cost` consumes.

Estimates follow the textbook System-R shapes on label frequencies:

* an exact atom costs its label count (0 for an absent label, which
  correctly sorts "provably empty" clauses first -- they empty the
  binding set immediately);
* a non-exact atom (glob / ``_`` / type test / negation) costs the sum
  of the counts of the matching labels;
* concatenation multiplies and renormalizes by the edge count
  (independence assumption), alternation adds, and closures add one full
  edge-set scan to the inner estimate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..automata.regex import (
    AltRE,
    AtomRE,
    ConcatRE,
    EpsilonRE,
    OptRE,
    PathRegex,
    PlusRE,
    StarRE,
)
from ..core.labels import Label, sym

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.frozen import FrozenGraph
    from ..core.oem import OemDatabase
    from ..schema.dataguide import DataGuide

__all__ = ["GraphStatistics"]


class GraphStatistics:
    """Frequency statistics of one database snapshot.

    ``label_counts`` maps each distinct edge label to its occurrence
    count; ``extent_sizes`` (optional) are the DataGuide target-set
    sizes; ``value_counts`` maps base-data labels (the leaf values) to
    their counts, which is what value-selectivity estimates divide by.
    """

    __slots__ = ("num_nodes", "num_edges", "label_counts", "value_counts", "extent_sizes")

    def __init__(
        self,
        num_nodes: int,
        num_edges: int,
        label_counts: dict[Label, int],
        *,
        value_counts: "dict[Label, int] | None" = None,
        extent_sizes: "list[int] | None" = None,
    ) -> None:
        self.num_nodes = num_nodes
        self.num_edges = num_edges
        self.label_counts = label_counts
        self.value_counts = (
            value_counts
            if value_counts is not None
            else {lab: n for lab, n in label_counts.items() if lab.is_base}
        )
        self.extent_sizes = extent_sizes

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_frozen(
        cls, fg: "FrozenGraph", *, guide: "DataGuide | None" = None
    ) -> "GraphStatistics":
        """Collect statistics from a frozen snapshot (one pass over edges)."""
        counts = [0] * len(fg.labels_seq)
        for lid in fg.label_ids:
            counts[lid] += 1
        label_counts = {fg.labels_seq[lid]: n for lid, n in enumerate(counts) if n}
        return cls(
            fg.num_nodes,
            fg.num_edges,
            label_counts,
            extent_sizes=guide.extent_sizes() if guide is not None else None,
        )

    @classmethod
    def from_oem(cls, db: "OemDatabase") -> "GraphStatistics":
        """Collect statistics from an OEM database (symbols + atom values)."""
        label_counts: dict[Label, int] = {}
        value_counts: dict[Label, int] = {}
        num_edges = 0
        for oid in db.oids():
            obj = db.get(oid)
            if obj.is_atomic:
                try:
                    lab = _value_label(obj.atom)
                except ValueError:  # pragma: no cover - atoms are always labelable
                    continue
                value_counts[lab] = value_counts.get(lab, 0) + 1
                continue
            for name, _child in obj.children:
                lab = sym(name)
                label_counts[lab] = label_counts.get(lab, 0) + 1
                num_edges += 1
        return cls(len(db), num_edges, label_counts, value_counts=value_counts)

    # -- point lookups ---------------------------------------------------------

    def count(self, label: Label) -> int:
        """Occurrences of ``label`` (0 when absent -- a proof of emptiness)."""
        return self.label_counts.get(label, 0)

    def matching_count(self, predicate) -> int:
        """Total occurrences of labels a :class:`LabelPredicate` accepts.

        Evaluated once per *distinct* label, so globs and negations cost
        vocabulary size, not edge count.
        """
        if predicate.is_exact:
            return self.count(predicate.exact_label)
        return sum(n for lab, n in self.label_counts.items() if predicate.matches(lab))

    def selectivity(self, value_label: Label) -> float:
        """Fraction of leaf values equal to ``value_label`` (0..1)."""
        total = sum(self.value_counts.values())
        if not total:
            return 0.0
        return self.value_counts.get(value_label, 0) / total

    # -- the cardinality estimator ---------------------------------------------

    def cardinality(self, path: "PathRegex | None") -> float:
        """Estimated number of (source, target) path matches for ``path``.

        An *estimate*, used only to rank clauses -- never to answer a
        query -- so the independence assumptions are acceptable: the
        greedy reorder just needs "absent label < selective chain <
        broad wildcard" to come out in that order, which frequencies
        guarantee and shape heuristics cannot.
        """
        if path is None or isinstance(path, EpsilonRE):
            return 1.0
        if isinstance(path, AtomRE):
            return float(self.matching_count(path.predicate))
        if isinstance(path, ConcatRE):
            left = self.cardinality(path.left)
            right = self.cardinality(path.right)
            return left * right / max(1.0, float(self.num_edges))
        if isinstance(path, AltRE):
            return self.cardinality(path.left) + self.cardinality(path.right)
        if isinstance(path, StarRE):
            # a closure can wander the whole edge set before stopping
            return float(self.num_edges) + self.cardinality(path.inner)
        if isinstance(path, PlusRE):
            return float(self.num_edges) + self.cardinality(path.inner)
        if isinstance(path, OptRE):
            return 1.0 + self.cardinality(path.inner)
        # unknown node kinds estimate over their parts, pessimistically
        parts: Iterable[PathRegex] = (
            getattr(path, name) for name in ("left", "right", "inner") if hasattr(path, name)
        )
        return float(self.num_edges) + sum(self.cardinality(p) for p in parts)

    def as_dict(self) -> dict[str, object]:
        """A JSON-ready summary (the ``stats --json`` planner section)."""
        out: dict[str, object] = {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "distinct_labels": len(self.label_counts),
            "distinct_values": len(self.value_counts),
        }
        if self.extent_sizes is not None:
            out["guide_states"] = len(self.extent_sizes)
            out["guide_extent_total"] = sum(self.extent_sizes)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<GraphStatistics nodes={self.num_nodes} edges={self.num_edges} "
            f"labels={len(self.label_counts)}>"
        )


def _value_label(value) -> Label:
    from ..core.labels import label_of, string

    if isinstance(value, str):
        return string(value)
    return label_of(value)
