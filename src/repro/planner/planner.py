"""The query planner: structural indexes before graph traversal.

One :class:`QueryPlanner` serves one :class:`~repro.core.frozen.
FrozenGraph` snapshot and routes every root-origin regular path query
through up to three strategies, cheapest-first:

1. **Path index** -- a pure exact-label concatenation covered by the
   :class:`~repro.index.PathIndex` answers in one dictionary lookup
   ("path indices on labels", section 4).
2. **DataGuide product** -- any root-origin pattern runs the automaton
   against the (small, deterministic) strong DataGuide instead of the
   data graph; the union of the extents of accepting guide states is the
   *exact* answer (Goldman & Widom, the paper's [22]).
3. **Masked kernel** -- when the caller needs actual traversal (witness
   paths) or the guide exceeded its state budget, the frozen label-
   pruned kernel runs, with a *guide mask* where available: per DFA
   state, the label ids that can advance it somewhere on a root-origin
   path of this snapshot.  The mask turns unbounded live sets (wildcard,
   negation and type guards) into finite partition lists -- each skipped
   edge provably dead-steps the automaton, so answers are unchanged.

The guide is built lazily under a state budget (the strong DataGuide of
a highly-connected graph can be exponential); on
:class:`~repro.schema.GuideTooLargeError` the planner permanently falls
back to strategy 3 without a mask, which is exactly the seed behaviour.
Masks are memoized in the :class:`~repro.automata.plan_cache.PlanCache`
keyed by ``(pattern text, snapshot id)``, so they live and die with the
pattern's compiled plan and can never leak across snapshots.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..automata.dfa import LazyDfa
from ..automata.plan_cache import PlanCache
from ..automata.product import (
    compile_rpq,
    rpq_nodes,
    rpq_nodes_profiled,
    rpq_witnesses,
    rpq_witnesses_profiled,
)
from ..automata.regex import PathRegex, parse_path_regex
from ..core.frozen import FrozenGraph, freeze
from ..index import GraphIndexes
from ..obs import QueryProfile
from ..schema.dataguide import DataGuide, GuideTooLargeError, guide_product
from .stats import GraphStatistics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.graph import Edge, Graph

__all__ = ["QueryPlanner", "planner_for"]

#: Strategy names accepted by :meth:`QueryPlanner.rpq` (``auto`` routes).
_STRATEGIES = ("auto", "index", "guide", "sql", "mask", "kernel")


class QueryPlanner:
    """Strategy routing for path queries over one frozen snapshot.

    ``plan_cache`` (shared with the evaluators when they have one)
    interns compiled plans and guide masks; ``guide_max_states`` bounds
    the DataGuide subset construction (default: ``max(256, 2 * nodes)``);
    ``path_depth`` is the :class:`~repro.index.PathIndex` depth bound.
    """

    def __init__(
        self,
        graph: "Graph | FrozenGraph",
        *,
        plan_cache: "PlanCache | None" = None,
        guide_max_states: "int | None" = None,
        path_depth: int = 4,
    ) -> None:
        self._fg = freeze(graph)
        self._plan_cache = (
            plan_cache
            if plan_cache is not None
            else PlanCache(name="planner_plan_cache")
        )
        self._guide_budget = guide_max_states
        self._guide: "DataGuide | None" = None
        self._guide_failed = False
        self._indexes = GraphIndexes(self._fg, path_depth=path_depth)
        self._stats: "GraphStatistics | None" = None
        self._regexes: dict[str, PathRegex] = {}
        self._sql = None  # attached SqlBackend, strategy 2.5

    # -- the structures ---------------------------------------------------------

    @property
    def graph(self) -> FrozenGraph:
        return self._fg

    @property
    def indexes(self) -> GraphIndexes:
        return self._indexes

    @property
    def plan_cache(self) -> PlanCache:
        return self._plan_cache

    @property
    def guide(self) -> "DataGuide | None":
        """The snapshot's DataGuide, or ``None`` when over budget.

        Built on first use; a budget failure is remembered, so a graph
        whose guide explodes pays the (bounded) construction attempt
        exactly once.
        """
        if self._guide is None and not self._guide_failed:
            budget = self._guide_budget
            if budget is None:
                budget = max(256, 2 * self._fg.num_nodes)
            try:
                self._guide = DataGuide(self._fg, max_states=budget)
            except GuideTooLargeError:
                self._guide_failed = True
        return self._guide

    @property
    def statistics(self) -> GraphStatistics:
        """Frequency statistics of the snapshot (collected once)."""
        if self._stats is None:
            self._stats = GraphStatistics.from_frozen(self._fg, guide=self.guide)
        return self._stats

    def attach_sql(self, backend=None):
        """Attach the compile-to-SQL engine as a routing option.

        With a backend attached, ``auto`` may answer root-origin queries
        from sqlite: after the index and the guide pass (the guide, when
        available, is already optimal and keeps existing routing -- and
        golden profiles -- untouched), a query whose compiled plan the
        backend :meth:`~repro.sqlbackend.SqlBackend.favors` runs as SQL
        instead of the masked kernel.  Pass an existing
        :class:`~repro.sqlbackend.SqlBackend` to share its connection;
        by default one is built over this planner's snapshot, statistics
        and guide.  Never attached implicitly: seed behaviour is
        unchanged until a caller opts in.
        """
        if backend is None:
            from ..sqlbackend.backend import SqlBackend

            backend = SqlBackend(self._fg, stats=self.statistics, guide=self.guide)
        self._sql = backend
        return backend

    @property
    def sql(self):
        """The attached :class:`~repro.sqlbackend.SqlBackend`, or ``None``."""
        return self._sql

    # -- plans and masks --------------------------------------------------------

    def plan_for(self, pattern: "str | PathRegex | LazyDfa") -> LazyDfa:
        """The compiled plan, interned through the planner's cache."""
        if isinstance(pattern, str):
            return self._plan_cache.get(pattern)
        return compile_rpq(pattern)

    def _regex_of(self, pattern: "str | PathRegex | LazyDfa") -> "PathRegex | None":
        """The pattern's AST when recoverable (fixed-path detection)."""
        if isinstance(pattern, PathRegex):
            return pattern
        if isinstance(pattern, str):
            regex = self._regexes.get(pattern)
            if regex is None:
                regex = self._regexes[pattern] = parse_path_regex(pattern)
            return regex
        return None

    def mask_for(
        self, pattern: "str | PathRegex | LazyDfa", dfa: "LazyDfa | None" = None
    ) -> "dict[int, frozenset[int]] | None":
        """The guide mask for ``pattern``, or ``None`` without a guide.

        Memoized in the plan cache under ``(text, snapshot id)`` for
        string patterns; non-string patterns compute fresh (they carry
        no stable key).
        """
        if self.guide is None:
            return None
        text = pattern if isinstance(pattern, str) else None
        if text is not None:
            cached = self._plan_cache.pruning_for(text, self._fg.snapshot_id)
            if cached is not None:
                return cached  # type: ignore[return-value]
        if dfa is None:
            dfa = self.plan_for(pattern)
        mask = self._compute_mask(dfa)
        if text is not None:
            self._plan_cache.store_pruning(text, self._fg.snapshot_id, mask)
        return mask

    def _compute_mask(self, dfa: LazyDfa) -> dict[int, frozenset[int]]:
        """Walk the guide x DFA product; collect live label ids per state.

        Soundness: every configuration ``(node, q)`` a root-origin data
        product reaches has ``node`` in the extent of some guide state
        ``g`` with ``(g, q)`` reachable here (guide completeness).  If a
        label advances the data product out of ``(node, q)``, the guide
        has the same transition out of ``g``, so the label is recorded
        for ``q`` -- the mask can only exclude labels whose every
        occurrence dead-steps the automaton.
        """
        guide = self.guide
        assert guide is not None
        label_index = self._fg.label_index
        mask: dict[int, set[int]] = {}
        start = (0, dfa.start)
        seen = {start}
        stack = [start]
        while stack:
            g, q = stack.pop()
            allowed = mask.setdefault(q, set())
            for label, g2 in guide.transitions_of(g).items():
                q2 = dfa.step(q, label)
                if dfa.is_dead(q2):
                    continue
                lid = label_index.get(label)
                if lid is not None:
                    allowed.add(lid)
                config = (g2, q2)
                if config not in seen:
                    seen.add(config)
                    stack.append(config)
        return {q: frozenset(ids) for q, ids in mask.items()}

    @staticmethod
    def _mask_pruned_partitions(
        mask: "dict[int, frozenset[int]] | None", num_labels: int
    ) -> int:
        """Static pruning strength: (state, label) classes the mask rules out."""
        if mask is None:
            return 0
        return sum(num_labels - len(allowed) for allowed in mask.values())

    # -- the routed entry points ------------------------------------------------

    def rpq(
        self,
        pattern: "str | PathRegex | LazyDfa",
        start: "int | None" = None,
        *,
        strategy: str = "auto",
    ) -> set[int]:
        """All nodes a matching path reaches, via the cheapest safe strategy.

        Answers equal :func:`repro.automata.product.rpq_nodes` on the
        same snapshot (the property suite asserts it).  ``strategy``
        forces a specific route for ablation (``index``, ``guide`` and
        ``sql`` raise when not applicable; ``mask`` degrades to
        ``kernel`` when no guide exists); non-root ``start`` always
        takes the kernel -- the index, the guide and the SQL backend
        only know root-origin paths.
        """
        if strategy not in _STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r} (one of {_STRATEGIES})")
        fg = self._fg
        origin = fg.root if start is None else start
        root_origin = origin == fg.root
        if not root_origin or strategy == "kernel":
            return rpq_nodes(fg, self.plan_for(pattern), start=origin)
        if strategy in ("auto", "index"):
            hit = self._index_lookup(pattern)
            if hit is not None:
                return set(hit)
            if strategy == "index":
                raise ValueError("pattern is not index-coverable")
        if strategy == "sql":
            return self._sql_route(pattern, forced=True)
        dfa = self.plan_for(pattern)
        if strategy in ("auto", "guide"):
            guide = self.guide
            if guide is not None:
                answers, _seen = guide_product(guide, dfa)
                return set(answers)
            if strategy == "guide":
                raise ValueError("no DataGuide available (over budget)")
        if strategy == "auto" and self._sql is not None:
            answers = self._sql_route(pattern, forced=False)
            if answers is not None:
                return answers
        mask = self.mask_for(pattern, dfa)
        return rpq_nodes(fg, dfa, start=origin, guide_mask=mask)

    def _sql_route(self, pattern, *, forced: bool) -> "set[int] | None":
        """The SQL answer when routed there, ``None`` to fall through.

        ``forced`` (strategy ``"sql"``) attaches a backend on demand and
        raises on uncompilable patterns, mirroring the other forced
        strategies; ``auto`` consults :meth:`SqlBackend.favors` and
        falls back silently.
        """
        from ..sqlbackend.errors import NotCompilable

        backend = self._sql
        if backend is None:
            if not forced:
                return None
            backend = self.attach_sql()
        regex = self._regex_of(pattern)
        if regex is None:
            if forced:
                raise ValueError("pre-compiled patterns cannot route to SQL")
            return None
        try:
            if forced or backend.favors(regex):
                return backend.rpq_nodes(regex)
        except NotCompilable as exc:
            if forced:
                raise ValueError(f"pattern is not SQL-compilable ({exc})") from exc
        return None

    def _index_lookup(self, pattern) -> "frozenset[int] | None":
        """The path-index answer for a covered fixed path, else ``None``."""
        from ..unql.optimizer import fixed_path_of

        regex = self._regex_of(pattern)
        if regex is None:
            return None
        fixed = fixed_path_of(regex)
        if fixed is None or not self._indexes.path.covers(fixed):
            return None
        return self._indexes.path.lookup(fixed)

    def witnesses(
        self, pattern: "str | PathRegex | LazyDfa", start: "int | None" = None
    ) -> "dict[int, tuple[Edge, ...]]":
        """Shortest witness paths, via the guide-masked kernel.

        Witnesses need real edges, so the guide cannot answer directly;
        the mask still skips every partition it proves dead.  Results
        (including tie-breaking) are identical to the unmasked search.
        """
        fg = self._fg
        origin = fg.root if start is None else start
        dfa = self.plan_for(pattern)
        mask = self.mask_for(pattern, dfa) if origin == fg.root else None
        return rpq_witnesses(fg, dfa, start=origin, guide_mask=mask)

    # -- profiled twins ---------------------------------------------------------

    def rpq_profiled(
        self, pattern: "str | PathRegex | LazyDfa", start: "int | None" = None
    ) -> tuple[set[int], QueryProfile]:
        """:meth:`rpq` plus a profile with planner counters in ``extras``.

        ``index_answered`` / ``guide_answered`` mark which strategy
        short-circuited; ``guide_pruned_partitions`` is the mask's
        static pruning strength on the kernel route.  The golden-profile
        suite never routes through the planner, so these extras appear
        only in planner-issued profiles.
        """
        fg = self._fg
        origin = fg.root if start is None else start
        query_text = pattern if isinstance(pattern, str) else "<compiled>"
        if origin == fg.root:
            hit = self._index_lookup(pattern)
            if hit is not None:
                profile = QueryProfile(engine="planner-rpq", query=query_text)
                profile.index_hits += 1
                profile.results = len(hit)
                profile.extras["index_answered"] = 1
                return set(hit), profile
            dfa = self.plan_for(pattern)
            guide = self.guide
            if guide is not None:
                profile = QueryProfile(engine="planner-rpq", query=query_text)
                states_before = dfa.num_materialized_states
                answers, seen = guide_product(guide, dfa)
                profile.product_pairs += len(seen)
                profile.nodes_visited += len({g for g, _ in seen})
                profile.dfa_states += dfa.num_materialized_states - states_before
                profile.results = len(answers)
                profile.extras["guide_answered"] = 1
                return set(answers), profile
            mask = self.mask_for(pattern, dfa)
            results, profile = rpq_nodes_profiled(
                fg, dfa, start=origin, guide_mask=mask
            )
            profile.engine, profile.query = "planner-rpq", query_text
            profile.extras["guide_pruned_partitions"] = self._mask_pruned_partitions(
                mask, len(fg.labels_seq)
            )
            return results, profile
        results, profile = rpq_nodes_profiled(fg, self.plan_for(pattern), start=origin)
        profile.engine, profile.query = "planner-rpq", query_text
        return results, profile

    def witnesses_profiled(
        self, pattern: "str | PathRegex | LazyDfa", start: "int | None" = None
    ) -> "tuple[dict[int, tuple[Edge, ...]], QueryProfile]":
        """:meth:`witnesses` plus its profile (mask strength in extras)."""
        fg = self._fg
        origin = fg.root if start is None else start
        dfa = self.plan_for(pattern)
        mask = self.mask_for(pattern, dfa) if origin == fg.root else None
        witnesses, profile = rpq_witnesses_profiled(
            fg, dfa, start=origin, guide_mask=mask
        )
        profile.engine = "planner-rpq-witnesses"
        if isinstance(pattern, str):
            profile.query = pattern
        profile.extras["guide_pruned_partitions"] = self._mask_pruned_partitions(
            mask, len(fg.labels_seq)
        )
        return witnesses, profile

    # -- browsing delegation ----------------------------------------------------

    def find_value(self, value: "str | int | float | bool"):
        """Section-1.3 "where is it", answered from the value index."""
        from ..browse.search import find_value

        return find_value(self._fg, value, self._indexes)

    def where_is(self, value: "str | int | float | bool") -> list[str]:
        """Dotted path strings for :meth:`find_value`."""
        return [str(f) for f in self.find_value(value)]

    def describe(self) -> dict[str, object]:
        """A JSON-ready summary (the ``stats --json`` planner section)."""
        out: dict[str, object] = {
            "snapshot_id": self._fg.snapshot_id,
            "guide_available": self.guide is not None,
            "plan_cache": self._plan_cache.stats(),
        }
        if self._guide is not None:
            out["guide_states"] = self._guide.num_states
            out["guide_transitions"] = self._guide.num_transitions
        if self._sql is not None:
            out["sql"] = {
                "attached": True,
                "sql_answered": self._sql.counters["executes"],
                "counters": dict(self._sql.counters),
                "last_sql": self._sql.last_sql,
            }
        else:
            out["sql"] = {"attached": False}
        out["statistics"] = self.statistics.as_dict()
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<QueryPlanner snapshot={self._fg.snapshot_id} "
            f"nodes={self._fg.num_nodes} guide="
            f"{'failed' if self._guide_failed else 'lazy' if self._guide is None else self._guide.num_states}>"
        )


def planner_for(
    graph: "Graph | FrozenGraph", *, plan_cache: "PlanCache | None" = None
) -> QueryPlanner:
    """The snapshot-cached planner of ``graph`` (freezing if needed).

    One planner per :class:`FrozenGraph` is memoized in the snapshot's
    extension slot, so the guide, path index and statistics amortize
    across every query against that snapshot.  ``plan_cache`` applies
    only to the call that creates the planner; later calls reuse it.
    """
    fg = freeze(graph)
    planner = fg._ext.get("planner")
    if not isinstance(planner, QueryPlanner):
        planner = QueryPlanner(fg, plan_cache=plan_cache)
        fg._ext["planner"] = planner
    return planner
