"""Lorel predicate pushdown: where-clauses resolved through value indexes.

The seed evaluator ran every ``where`` clause as a *post-filter*: bind
every alias to every object its path reaches, then throw most
environments away.  For a selective comparison over a fixed symbol path
(``where m.Year < 1950``) that is backwards -- the database knows which
atoms satisfy the comparison, and walking the child edges *in reverse*
from those atoms yields exactly the alias bindings that can survive.

:class:`OemIndexes` materializes the two structures that walk needs in
one pass over the database: the distinct-value groups of the atomic
objects (one coercing comparison per distinct value, not per object) and
the reverse parent map.  :func:`pushdown_candidates` decomposes a where
predicate into AND-conjuncts, recognizes the pushable shape --
``alias.fixed.symbol.path  op  literal`` (either orientation) and
``... like pattern`` -- and intersects the candidate sets per alias.
The evaluator then *seeds* each alias binding with its candidate set and
still applies the full where clause to the survivors, so pushdown can
only remove work, never change an answer (the property suite asserts
set-equality against the post-filtering evaluator).

Comparisons are evaluated with :func:`repro.lorel.coerce.compare_values`
in the conjunct's original operand orientation, so Lorel's asymmetric
coercion rules (string/number coercion, bool strictness) are preserved
bit-for-bit.

Staleness: the indexes record :attr:`~repro.core.oem.OemDatabase.version`
at build time; :func:`oem_indexes_for` keeps one cached instance per
database in a :class:`weakref.WeakKeyDictionary` (the value never
strongly references the key, so databases stay collectable) and rebuilds
on any version mismatch.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Callable, Iterator

from ..core.oem import OemDatabase, Oid
from ..lorel.ast import (
    BoolOp,
    Compare,
    LikePredicate,
    LiteralOperand,
    PathOperand,
    Predicate,
)
from .stats import GraphStatistics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..automata.regex import PathRegex
    from ..lorel.ast import LorelQuery

__all__ = ["OemIndexes", "oem_indexes_for", "pushdown_candidates", "fixed_symbol_path"]


def fixed_symbol_path(regex: "PathRegex | None") -> "tuple[str, ...] | None":
    """The symbol sequence of a pure exact-symbol-concat regex, else ``None``.

    ``None`` as input (a bare alias operand) is the empty path: the alias
    object itself is the comparison target.
    """
    if regex is None:
        return ()
    from ..unql.optimizer import fixed_path_of

    path = fixed_path_of(regex)
    if path is None or not all(lab.is_symbol for lab in path):
        return None
    return tuple(str(lab.value) for lab in path)


class OemIndexes:
    """Value groups + reverse parent map over one OEM database snapshot.

    ``hits`` counts conjuncts answered from the structure, ``misses``
    conjuncts that had to stay post-filters -- the accounting surfaced by
    the ``profile --planner`` CLI.
    """

    def __init__(self, db: OemDatabase) -> None:
        self._db_ref = weakref.ref(db)
        self._built_version = db.version
        self.hits = 0
        self.misses = 0
        # distinct atom value -> oids of the atomic objects holding it.
        # Keyed by (type, value) so 1 / 1.0 / True stay distinct groups
        # (Lorel's coercion decides their comparability, not dict hashing).
        self._atoms_by_value: dict[tuple[type, object], list[Oid]] = {}
        # child oid -> (symbol, parent oid) pairs: the reverse edge map
        self._parents: dict[Oid, list[tuple[str, Oid]]] = {}
        for oid in db.oids():
            obj = db.get(oid)
            if obj.is_atomic:
                key = (type(obj.atom), obj.atom)
                self._atoms_by_value.setdefault(key, []).append(oid)
            else:
                for name, child in obj.children:
                    self._parents.setdefault(child, []).append((name, oid))
        #: frequency statistics over the same snapshot, for the
        #: cost-based clause reordering (one build serves both uses)
        self.stats = GraphStatistics.from_oem(db)

    def is_stale(self) -> bool:
        """True iff the database mutated (or died) since the build."""
        db = self._db_ref()
        return db is None or db.version != self._built_version

    @property
    def num_distinct_values(self) -> int:
        return len(self._atoms_by_value)

    def atoms_where(self, test: Callable[[object], bool]) -> set[Oid]:
        """Atomic oids whose value satisfies ``test``.

        ``test`` runs once per *distinct* value -- the index's point.
        """
        out: set[Oid] = set()
        for (_, value), oids in self._atoms_by_value.items():
            if test(value):
                out.update(oids)
        return out

    def sources_via(self, targets: set[Oid], labels: tuple[str, ...]) -> set[Oid]:
        """Oids from which the forward symbol path ``labels`` reaches a target.

        A reverse walk: for path ``a.b``, step to parents through ``b``,
        then through ``a``.  Multi-parents and cycles are fine -- the
        walk is a fixed number of label-filtered set expansions.
        """
        current = targets
        for label in reversed(labels):
            nxt: set[Oid] = set()
            for oid in current:
                for name, parent in self._parents.get(oid, ()):
                    if name == label:
                        nxt.add(parent)
            current = nxt
            if not current:
                break
        return current

    def accounting(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}


#: One cached OemIndexes per database; values hold only a weakref back to
#: their key, so the WeakKeyDictionary can actually collect entries.
_INDEX_CACHE: "weakref.WeakKeyDictionary[OemDatabase, OemIndexes]" = (
    weakref.WeakKeyDictionary()
)


def oem_indexes_for(db: OemDatabase) -> OemIndexes:
    """The cached :class:`OemIndexes` of ``db``, rebuilt when stale."""
    cached = _INDEX_CACHE.get(db)
    if cached is None or cached.is_stale():
        cached = OemIndexes(db)
        _INDEX_CACHE[db] = cached
    return cached


# -- conjunct analysis -----------------------------------------------------------


def conjuncts_of(predicate: "Predicate | None") -> Iterator["Predicate"]:
    """The top-level AND-conjuncts of a predicate (stops at or/not)."""
    if predicate is None:
        return
    if isinstance(predicate, BoolOp) and predicate.op == "and":
        yield from conjuncts_of(predicate.left)
        yield from conjuncts_of(predicate.right)
        return
    yield predicate


def _candidate_entry(
    conjunct: "Predicate", indexes: OemIndexes, db_name: str
) -> "tuple[str, set[Oid]] | None":
    """``(alias, candidate oids)`` for a pushable conjunct, else ``None``.

    The candidate set is exact for the conjunct in isolation -- an alias
    binding survives the conjunct iff some atom satisfying the test is
    reachable from it over the fixed path, which is precisely what the
    reverse walk computes -- but the evaluator keeps the full where
    clause as a residual filter regardless (or/not/multi-alias conjuncts
    are never pushed, and redundancy is free compared to wrong).
    """
    from ..lorel.coerce import compare_values, like_value

    operand: "PathOperand | None" = None
    test: "Callable[[object], bool] | None" = None
    if isinstance(conjunct, Compare):
        left, op, right = conjunct.left, conjunct.op, conjunct.right
        if isinstance(left, PathOperand) and isinstance(right, LiteralOperand):
            operand = left
            test = lambda v: compare_values(v, op, right.value)  # noqa: E731
        elif isinstance(left, LiteralOperand) and isinstance(right, PathOperand):
            operand = right
            test = lambda v: compare_values(left.value, op, v)  # noqa: E731
    elif isinstance(conjunct, LikePredicate) and isinstance(
        conjunct.operand, PathOperand
    ):
        operand = conjunct.operand
        pattern = conjunct.pattern
        test = lambda v: like_value(v, pattern)  # noqa: E731
    if operand is None or test is None or operand.base == db_name:
        return None
    path = fixed_symbol_path(operand.path)
    if path is None:
        return None
    atoms = indexes.atoms_where(test)
    return operand.base, indexes.sources_via(atoms, path)


def pushdown_candidates(
    query: "LorelQuery", indexes: OemIndexes, db_name: str = "DB"
) -> dict[str, set[Oid]]:
    """Per-alias candidate oid sets from the pushable where-conjuncts.

    Multiple pushable conjuncts on one alias intersect.  An empty dict
    means nothing was pushable (or the indexes are stale) and the
    evaluator proceeds exactly as before.
    """
    if query.where is None or indexes.is_stale():
        return {}
    out: dict[str, set[Oid]] = {}
    for conjunct in conjuncts_of(query.where):
        if not isinstance(conjunct, (Compare, LikePredicate)):
            continue
        entry = _candidate_entry(conjunct, indexes, db_name)
        if entry is None:
            indexes.misses += 1
            continue
        indexes.hits += 1
        alias, candidates = entry
        if alias in out:
            out[alias] &= candidates
        else:
            out[alias] = candidates
    return out
