"""Index-accelerated query planning (section 4 + the DataGuide of [22]).

The paper's optimization story for semistructured queries is structural:
*"the addition of path ... indices on labels"* and the DataGuide's role
as a summary that answers path questions without touching the database.
This package is the layer that routes every query through those
structures before the data graph is traversed:

* :class:`QueryPlanner` -- per-snapshot strategy routing for regular
  path queries: answer covered fixed paths from the
  :class:`~repro.index.PathIndex`, answer root-origin patterns from the
  :class:`~repro.schema.DataGuide` product, and otherwise run the frozen
  kernel under a *guide mask* (per-DFA-state live-label sets derived
  from the guide x automaton product) that bounds wildcard and negation
  guards to the labels actually reachable on root paths;
* :class:`GraphStatistics` -- label frequencies, guide extent sizes and
  value selectivities collected at freeze time, driving the cost-based
  Lorel clause reordering of :func:`repro.lorel.reorder_from_clauses`;
* :mod:`repro.planner.pushdown` -- Lorel ``where``-clause predicate
  pushdown: comparisons over fixed symbol paths resolve through an
  :class:`~repro.planner.pushdown.OemIndexes` value index into candidate
  oid sets that seed the binding traversal instead of post-filtering it.

Every strategy is *safe*: the property suite in ``tests/planner`` checks
planner answers against the plain product on random graphs and patterns.
"""

from __future__ import annotations

from .planner import QueryPlanner, planner_for
from .pushdown import OemIndexes, oem_indexes_for, pushdown_candidates
from .stats import GraphStatistics

__all__ = [
    "QueryPlanner",
    "planner_for",
    "GraphStatistics",
    "OemIndexes",
    "oem_indexes_for",
    "pushdown_candidates",
]
