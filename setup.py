"""Legacy setup shim: allows editable installs without the wheel package."""
from setuptools import setup

setup()
